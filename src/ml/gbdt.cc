#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

namespace featlib {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

GbdtModel::GbdtModel(TaskKind task, GbdtOptions options)
    : task_(task), options_(options) {}

Status GbdtModel::Fit(const Dataset& train) {
  if (train.n == 0 || train.d == 0) {
    return Status::InvalidArgument("GBDT needs non-empty training data");
  }
  d_ = train.d;
  num_classes_ = task_ == TaskKind::kBinaryClassification ? 2 : train.num_classes;
  const size_t n_heads = task_ == TaskKind::kMultiClassification
                             ? static_cast<size_t>(num_classes_)
                             : 1;
  heads_.assign(n_heads, {});
  Rng rng(options_.seed);

  if (task_ == TaskKind::kRegression) {
    double mean = 0.0;
    for (double y : train.y) mean += y;
    base_score_ = train.n > 0 ? mean / static_cast<double>(train.n) : 0.0;
  } else {
    base_score_ = 0.0;  // raw margin space
  }

  const size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(train.n) * options_.subsample));

  for (size_t head = 0; head < n_heads; ++head) {
    std::vector<double> margin(train.n, base_score_);
    std::vector<double> grad(train.n);
    std::vector<double> hess(train.n);
    for (int round = 0; round < options_.n_rounds; ++round) {
      for (size_t i = 0; i < train.n; ++i) {
        if (task_ == TaskKind::kRegression) {
          grad[i] = margin[i] - train.y[i];
          hess[i] = 1.0;
        } else {
          const double target =
              n_heads == 1 ? (train.y[i] >= 0.5 ? 1.0 : 0.0)
                           : (static_cast<size_t>(std::llround(train.y[i])) == head
                                  ? 1.0
                                  : 0.0);
          const double p = Sigmoid(margin[i]);
          grad[i] = p - target;
          hess[i] = std::max(1e-6, p * (1.0 - p));
        }
      }
      std::vector<uint32_t> rows;
      if (options_.subsample >= 1.0) {
        rows.resize(train.n);
        for (size_t i = 0; i < train.n; ++i) rows[i] = static_cast<uint32_t>(i);
      } else {
        rows.reserve(sample_n);
        for (auto idx : rng.SampleIndices(train.n, sample_n)) {
          rows.push_back(static_cast<uint32_t>(idx));
        }
      }
      Rng tree_rng = rng.Fork();
      GradientTree tree;
      tree.Fit(train, rows, grad, hess, options_.tree, &tree_rng);
      for (size_t i = 0; i < train.n; ++i) {
        margin[i] += options_.learning_rate * tree.PredictRow(train, i);
      }
      heads_[head].push_back(std::move(tree));
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> GbdtModel::RawScores(const Dataset& ds, size_t head) const {
  std::vector<double> out(ds.n, base_score_);
  for (const auto& tree : heads_[head]) {
    for (size_t r = 0; r < ds.n; ++r) {
      out[r] += options_.learning_rate * tree.PredictRow(ds, r);
    }
  }
  return out;
}

std::vector<double> GbdtModel::PredictScore(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictScore before Fit");
  if (task_ == TaskKind::kRegression) return RawScores(ds, 0);
  if (heads_.size() == 1) {
    auto raw = RawScores(ds, 0);
    for (double& v : raw) v = Sigmoid(v);
    return raw;
  }
  std::vector<double> best(ds.n, -1.0);
  for (size_t head = 0; head < heads_.size(); ++head) {
    const auto raw = RawScores(ds, head);
    for (size_t r = 0; r < ds.n; ++r) best[r] = std::max(best[r], Sigmoid(raw[r]));
  }
  return best;
}

std::vector<int> GbdtModel::PredictClass(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictClass before Fit");
  if (task_ == TaskKind::kRegression || heads_.size() == 1) {
    const auto scores = PredictScore(ds);
    std::vector<int> out(ds.n);
    for (size_t r = 0; r < ds.n; ++r) out[r] = scores[r] >= 0.5 ? 1 : 0;
    return out;
  }
  std::vector<int> out(ds.n, 0);
  std::vector<double> best(ds.n, -1e300);
  for (size_t head = 0; head < heads_.size(); ++head) {
    const auto raw = RawScores(ds, head);
    for (size_t r = 0; r < ds.n; ++r) {
      if (raw[r] > best[r]) {
        best[r] = raw[r];
        out[r] = static_cast<int>(head);
      }
    }
  }
  return out;
}

std::vector<double> GbdtModel::FeatureImportances() const {
  FEAT_CHECK(fitted_, "FeatureImportances before Fit");
  std::vector<double> out(d_, 0.0);
  for (const auto& head : heads_) {
    for (const auto& tree : head) {
      const auto& gains = tree.feature_gains();
      for (size_t c = 0; c < gains.size() && c < d_; ++c) out[c] += gains[c];
    }
  }
  return out;
}

}  // namespace featlib

#include "ml/evaluator.h"

#include <cmath>

namespace featlib {

MetricKind DefaultMetricFor(TaskKind task) {
  switch (task) {
    case TaskKind::kBinaryClassification:
      return MetricKind::kAuc;
    case TaskKind::kMultiClassification:
      return MetricKind::kF1Macro;
    case TaskKind::kRegression:
      return MetricKind::kRmse;
  }
  return MetricKind::kAuc;
}

Result<double> TrainAndScore(ModelKind kind, const Dataset& train,
                             const Dataset& valid, MetricKind metric,
                             uint64_t seed) {
  if (train.d == 0) {
    return Status::InvalidArgument("cannot train on zero features");
  }
  Dataset train_imputed = train;
  Dataset valid_imputed = valid;
  ImputeNanInPlace(&train_imputed, train);
  ImputeNanInPlace(&valid_imputed, train);

  auto model = MakeModel(kind, train.task, seed);
  if (model == nullptr) return Status::InvalidArgument("unknown model kind");
  FEAT_RETURN_NOT_OK(model->Fit(train_imputed));

  switch (metric) {
    case MetricKind::kAuc: {
      const auto scores = model->PredictScore(valid_imputed);
      return Auc(valid_imputed.y, scores);
    }
    case MetricKind::kF1Macro: {
      const auto pred = model->PredictClass(valid_imputed);
      std::vector<int> labels(valid_imputed.n);
      for (size_t i = 0; i < valid_imputed.n; ++i) {
        labels[i] = static_cast<int>(std::llround(valid_imputed.y[i]));
      }
      return F1Macro(labels, pred, valid_imputed.num_classes);
    }
    case MetricKind::kRmse: {
      const auto pred = model->PredictScore(valid_imputed);
      return Rmse(valid_imputed.y, pred);
    }
    case MetricKind::kAccuracy: {
      const auto pred = model->PredictClass(valid_imputed);
      std::vector<int> labels(valid_imputed.n);
      for (size_t i = 0; i < valid_imputed.n; ++i) {
        labels[i] = static_cast<int>(std::llround(valid_imputed.y[i]));
      }
      return Accuracy(labels, pred);
    }
    case MetricKind::kLogLoss: {
      const auto scores = model->PredictScore(valid_imputed);
      return LogLoss(valid_imputed.y, scores);
    }
  }
  return Status::InvalidArgument("unknown metric");
}

double MetricToLoss(MetricKind metric, double value) {
  return MetricHigherIsBetter(metric) ? -value : value;
}

}  // namespace featlib

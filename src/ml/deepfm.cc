#include "ml/deepfm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace featlib {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

struct DeepFmModel::Workspace {
  std::vector<double> e;        // d*k scaled embeddings
  std::vector<double> s;        // k column sums of e
  std::vector<double> h1_pre, h1, h2_pre, h2;
  double first_order = 0.0;
  double fm = 0.0;
  double deep = 0.0;
};

DeepFmModel::DeepFmModel(TaskKind task, DeepFmOptions options)
    : task_(task), options_(options) {}

double DeepFmModel::Forward(const double* x, Workspace* ws) const {
  const size_t k = static_cast<size_t>(options_.embed_dim);
  const size_t h1n = static_cast<size_t>(options_.hidden1);
  const size_t h2n = static_cast<size_t>(options_.hidden2);
  const size_t dk = d_ * k;
  ws->e.assign(dk, 0.0);
  ws->s.assign(k, 0.0);

  // Embeddings and first-order term.
  double first = params_[off_b_];
  for (size_t i = 0; i < d_; ++i) {
    first += params_[off_w_ + i] * x[i];
    for (size_t f = 0; f < k; ++f) {
      const double e = x[i] * params_[off_v_ + i * k + f];
      ws->e[i * k + f] = e;
      ws->s[f] += e;
    }
  }
  ws->first_order = first;

  // FM second-order term.
  double fm = 0.0;
  for (size_t f = 0; f < k; ++f) {
    double q = 0.0;
    for (size_t i = 0; i < d_; ++i) {
      const double e = ws->e[i * k + f];
      q += e * e;
    }
    fm += ws->s[f] * ws->s[f] - q;
  }
  ws->fm = 0.5 * fm;

  // Deep tower.
  ws->h1_pre.assign(h1n, 0.0);
  ws->h1.assign(h1n, 0.0);
  for (size_t j = 0; j < h1n; ++j) {
    double z = params_[off_b1_ + j];
    const double* w_row = &params_[off_w1_ + j * dk];
    for (size_t i = 0; i < dk; ++i) z += w_row[i] * ws->e[i];
    ws->h1_pre[j] = z;
    ws->h1[j] = z > 0.0 ? z : 0.0;
  }
  ws->h2_pre.assign(h2n, 0.0);
  ws->h2.assign(h2n, 0.0);
  for (size_t j = 0; j < h2n; ++j) {
    double z = params_[off_b2_ + j];
    const double* w_row = &params_[off_w2_ + j * h1n];
    for (size_t i = 0; i < h1n; ++i) z += w_row[i] * ws->h1[i];
    ws->h2_pre[j] = z;
    ws->h2[j] = z > 0.0 ? z : 0.0;
  }
  double deep = params_[off_b3_];
  for (size_t j = 0; j < h2n; ++j) deep += params_[off_w3_ + j] * ws->h2[j];
  ws->deep = deep;

  return ws->first_order + ws->fm + ws->deep;
}

Status DeepFmModel::Fit(const Dataset& train) {
  if (task_ == TaskKind::kMultiClassification) {
    return Status::InvalidArgument(
        "DeepFM supports binary classification and regression only");
  }
  if (train.n == 0 || train.d == 0) {
    return Status::InvalidArgument("DeepFM needs non-empty training data");
  }
  d_ = train.d;
  const size_t k = static_cast<size_t>(options_.embed_dim);
  const size_t h1n = static_cast<size_t>(options_.hidden1);
  const size_t h2n = static_cast<size_t>(options_.hidden2);
  const size_t dk = d_ * k;

  off_v_ = 0;
  off_w_ = off_v_ + dk;
  off_b_ = off_w_ + d_;
  off_w1_ = off_b_ + 1;
  off_b1_ = off_w1_ + h1n * dk;
  off_w2_ = off_b1_ + h1n;
  off_b2_ = off_w2_ + h2n * h1n;
  off_w3_ = off_b2_ + h2n;
  off_b3_ = off_w3_ + h2n;
  const size_t n_params = off_b3_ + 1;

  Rng rng(options_.seed);
  params_.assign(n_params, 0.0);
  const double v_scale = 0.1 / std::sqrt(static_cast<double>(k));
  for (size_t i = off_v_; i < off_v_ + dk; ++i) params_[i] = rng.Normal(0.0, v_scale);
  const double w1_scale = std::sqrt(2.0 / static_cast<double>(dk));
  for (size_t i = off_w1_; i < off_w1_ + h1n * dk; ++i) {
    params_[i] = rng.Normal(0.0, w1_scale);
  }
  const double w2_scale = std::sqrt(2.0 / static_cast<double>(h1n));
  for (size_t i = off_w2_; i < off_w2_ + h2n * h1n; ++i) {
    params_[i] = rng.Normal(0.0, w2_scale);
  }
  const double w3_scale = std::sqrt(2.0 / static_cast<double>(h2n));
  for (size_t i = off_w3_; i < off_w3_ + h2n; ++i) {
    params_[i] = rng.Normal(0.0, w3_scale);
  }

  standardizer_.Fit(train);
  Dataset std_train = train;
  standardizer_.Apply(&std_train);

  // Adam state.
  std::vector<double> m(n_params, 0.0);
  std::vector<double> v(n_params, 0.0);
  std::vector<double> grad(n_params, 0.0);
  const double beta1 = 0.9;
  const double beta2 = 0.999;
  const double eps = 1e-8;
  int64_t step = 0;

  std::vector<uint32_t> order(train.n);
  std::iota(order.begin(), order.end(), 0u);
  Workspace ws;
  std::vector<double> de(dk), dh1(h1n), dh2(h2n);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < train.n;
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end =
          std::min(train.n, start + static_cast<size_t>(options_.batch_size));
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t bi = start; bi < end; ++bi) {
        const size_t row = order[bi];
        const double* x = &std_train.x[row * d_];
        const double logit = Forward(x, &ws);
        double dlogit;
        if (task_ == TaskKind::kRegression) {
          dlogit = logit - std_train.y[row];  // squared loss, identity head
        } else {
          const double target = std_train.y[row] >= 0.5 ? 1.0 : 0.0;
          dlogit = Sigmoid(logit) - target;
        }

        // First-order weights.
        grad[off_b_] += dlogit;
        for (size_t i = 0; i < d_; ++i) grad[off_w_ + i] += dlogit * x[i];

        // Deep tower backward.
        grad[off_b3_] += dlogit;
        for (size_t j = 0; j < h2n; ++j) {
          grad[off_w3_ + j] += dlogit * ws.h2[j];
          dh2[j] = dlogit * params_[off_w3_ + j];
          if (ws.h2_pre[j] <= 0.0) dh2[j] = 0.0;
        }
        std::fill(dh1.begin(), dh1.end(), 0.0);
        for (size_t j = 0; j < h2n; ++j) {
          if (dh2[j] == 0.0) continue;
          grad[off_b2_ + j] += dh2[j];
          const size_t w_off = off_w2_ + j * h1n;
          for (size_t i = 0; i < h1n; ++i) {
            grad[w_off + i] += dh2[j] * ws.h1[i];
            dh1[i] += dh2[j] * params_[w_off + i];
          }
        }
        std::fill(de.begin(), de.end(), 0.0);
        for (size_t j = 0; j < h1n; ++j) {
          double dj = dh1[j];
          if (ws.h1_pre[j] <= 0.0) dj = 0.0;
          if (dj == 0.0) continue;
          grad[off_b1_ + j] += dj;
          const size_t w_off = off_w1_ + j * dk;
          for (size_t i = 0; i < dk; ++i) {
            grad[w_off + i] += dj * ws.e[i];
            de[i] += dj * params_[w_off + i];
          }
        }

        // FM backward: dfm/de_if = s_f - e_if.
        for (size_t i = 0; i < d_; ++i) {
          for (size_t f = 0; f < k; ++f) {
            const double total_de =
                de[i * k + f] + dlogit * (ws.s[f] - ws.e[i * k + f]);
            grad[off_v_ + i * k + f] += total_de * x[i];
          }
        }
      }

      // Adam update with decoupled L2.
      const double batch_scale = 1.0 / static_cast<double>(end - start);
      ++step;
      const double bias1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double bias2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t i = 0; i < n_params; ++i) {
        const double g = grad[i] * batch_scale + options_.l2 * params_[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        params_[i] -= options_.learning_rate * (m[i] / bias1) /
                      (std::sqrt(v[i] / bias2) + eps);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> DeepFmModel::PredictScore(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictScore before Fit");
  FEAT_CHECK(ds.d == d_, "DeepFM dimension mismatch");
  Dataset std_ds = ds;
  standardizer_.Apply(&std_ds);
  Workspace ws;
  std::vector<double> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) {
    const double raw = Forward(&std_ds.x[r * d_], &ws);
    out[r] = task_ == TaskKind::kRegression ? raw : Sigmoid(raw);
  }
  return out;
}

std::vector<int> DeepFmModel::PredictClass(const Dataset& ds) const {
  const auto scores = PredictScore(ds);
  std::vector<int> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) out[r] = scores[r] >= 0.5 ? 1 : 0;
  return out;
}

}  // namespace featlib

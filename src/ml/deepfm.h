#pragma once

/// \file deepfm.h
/// \brief DeepFM (Guo et al., IJCAI'17): a factorization-machine component
/// plus an MLP over shared per-feature embeddings, summed into one sigmoid
/// head. Binary classification only, as in the paper's evaluation.
///
/// Dense adaptation: each numeric feature i has a latent vector V_i in R^k;
/// its "field embedding" is x_i * V_i. The FM term is the classic
/// 0.5 * sum_f [(sum_i e_if)^2 - sum_i e_if^2]; the deep tower consumes the
/// concatenated embeddings. Trained with minibatch Adam on log-loss over
/// standardized inputs.

#include <vector>

#include "ml/model.h"

namespace featlib {

struct DeepFmOptions {
  int embed_dim = 8;
  int hidden1 = 32;
  int hidden2 = 16;
  int epochs = 20;
  int batch_size = 64;
  double learning_rate = 1e-2;
  double l2 = 1e-5;
  uint64_t seed = 42;
};

/// \brief DeepFM model (binary classification or regression).
class DeepFmModel : public Model {
 public:
  explicit DeepFmModel(TaskKind task, DeepFmOptions options = {});

  Status Fit(const Dataset& train) override;
  std::vector<double> PredictScore(const Dataset& ds) const override;
  std::vector<int> PredictClass(const Dataset& ds) const override;

 private:
  struct Workspace;

  /// Forward pass for one (standardized) row; fills the workspace so the
  /// training loop can backpropagate through it.
  double Forward(const double* x, Workspace* ws) const;

  TaskKind task_;
  DeepFmOptions options_;
  size_t d_ = 0;
  // Parameters, flattened: see offsets in deepfm.cc.
  std::vector<double> params_;
  Standardizer standardizer_;
  bool fitted_ = false;

  // Parameter block offsets.
  size_t off_v_ = 0;   // d * k embeddings
  size_t off_w_ = 0;   // d first-order weights
  size_t off_b_ = 0;   // 1 bias
  size_t off_w1_ = 0;  // hidden1 x (d*k)
  size_t off_b1_ = 0;  // hidden1
  size_t off_w2_ = 0;  // hidden2 x hidden1
  size_t off_b2_ = 0;  // hidden2
  size_t off_w3_ = 0;  // hidden2
  size_t off_b3_ = 0;  // 1
};

}  // namespace featlib

#pragma once

/// \file evaluator.h
/// \brief Train-and-score helper: the L(A(D_train), D_valid) of Problem 1.

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/model.h"

namespace featlib {

/// Default metric for a task, matching the paper: AUC for binary
/// classification, macro-F1 for multi-class, RMSE for regression.
MetricKind DefaultMetricFor(TaskKind task);

/// \brief Trains `kind` on `train` and scores it on `valid`.
///
/// Inputs may contain NaN; both splits are imputed with the training means
/// first. Returns the metric value (orientation per MetricHigherIsBetter).
Result<double> TrainAndScore(ModelKind kind, const Dataset& train,
                             const Dataset& valid, MetricKind metric,
                             uint64_t seed);

/// Converts a metric value to a loss (lower is better) so optimizers can
/// minimize uniformly: negates higher-is-better metrics.
double MetricToLoss(MetricKind metric, double value);

}  // namespace featlib

#include "ml/forest.h"

#include <algorithm>
#include <cmath>

namespace featlib {

RandomForestModel::RandomForestModel(TaskKind task, RandomForestOptions options)
    : task_(task), options_(options) {}

Status RandomForestModel::Fit(const Dataset& train) {
  if (train.n == 0 || train.d == 0) {
    return Status::InvalidArgument("RandomForest needs non-empty training data");
  }
  num_classes_ = task_ == TaskKind::kBinaryClassification ? 2 : train.num_classes;
  Rng rng(options_.seed);
  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features <= 0) {
    tree_options.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(train.d)) + 0.5));
  }
  const size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(train.n) * options_.subsample));

  class_trees_.clear();
  reg_trees_.clear();
  for (int t = 0; t < options_.n_trees; ++t) {
    // Bootstrap sample (with replacement).
    std::vector<uint32_t> rows(sample_n);
    for (auto& r : rows) r = static_cast<uint32_t>(rng.UniformInt(train.n));
    Rng tree_rng = rng.Fork();
    if (task_ == TaskKind::kRegression) {
      // Gradient tree with grad=-y, hess=1 predicts leaf means.
      std::vector<double> grad(train.n);
      for (size_t i = 0; i < train.n; ++i) grad[i] = -train.y[i];
      std::vector<double> hess(train.n, 1.0);
      TreeOptions reg_opts = tree_options;
      reg_opts.lambda = 1e-6;
      reg_opts.min_gain = 0.0;
      GradientTree tree;
      tree.Fit(train, rows, grad, hess, reg_opts, &tree_rng);
      reg_trees_.push_back(std::move(tree));
    } else {
      ClassificationTree tree;
      tree.Fit(train, rows, num_classes_, tree_options, &tree_rng);
      class_trees_.push_back(std::move(tree));
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> RandomForestModel::FeatureImportances() const {
  FEAT_CHECK(fitted_, "FeatureImportances before Fit");
  std::vector<double> out;
  for (const auto& tree : class_trees_) {
    const auto& gains = tree.feature_gains();
    if (out.size() < gains.size()) out.resize(gains.size(), 0.0);
    for (size_t c = 0; c < gains.size(); ++c) out[c] += gains[c];
  }
  for (const auto& tree : reg_trees_) {
    const auto& gains = tree.feature_gains();
    if (out.size() < gains.size()) out.resize(gains.size(), 0.0);
    for (size_t c = 0; c < gains.size(); ++c) out[c] += gains[c];
  }
  return out;
}

std::vector<std::vector<double>> RandomForestModel::PredictDistributions(
    const Dataset& ds) const {
  std::vector<std::vector<double>> out(
      ds.n, std::vector<double>(static_cast<size_t>(num_classes_), 0.0));
  for (const auto& tree : class_trees_) {
    for (size_t r = 0; r < ds.n; ++r) {
      const auto& dist = tree.PredictDistribution(ds, r);
      for (size_t c = 0; c < dist.size() && c < out[r].size(); ++c) {
        out[r][c] += dist[c];
      }
    }
  }
  const double scale = class_trees_.empty()
                           ? 1.0
                           : 1.0 / static_cast<double>(class_trees_.size());
  for (auto& dist : out) {
    for (double& p : dist) p *= scale;
  }
  return out;
}

std::vector<double> RandomForestModel::PredictScore(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictScore before Fit");
  if (task_ == TaskKind::kRegression) {
    std::vector<double> out(ds.n, 0.0);
    for (const auto& tree : reg_trees_) {
      for (size_t r = 0; r < ds.n; ++r) out[r] += tree.PredictRow(ds, r);
    }
    const double scale =
        reg_trees_.empty() ? 1.0 : 1.0 / static_cast<double>(reg_trees_.size());
    for (double& v : out) v *= scale;
    return out;
  }
  const auto dists = PredictDistributions(ds);
  std::vector<double> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) {
    if (task_ == TaskKind::kBinaryClassification) {
      out[r] = dists[r].size() > 1 ? dists[r][1] : 0.0;
    } else {
      out[r] = *std::max_element(dists[r].begin(), dists[r].end());
    }
  }
  return out;
}

std::vector<int> RandomForestModel::PredictClass(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictClass before Fit");
  if (task_ == TaskKind::kRegression) {
    const auto scores = PredictScore(ds);
    std::vector<int> out(ds.n);
    for (size_t r = 0; r < ds.n; ++r) out[r] = scores[r] >= 0.5 ? 1 : 0;
    return out;
  }
  const auto dists = PredictDistributions(ds);
  std::vector<int> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) {
    out[r] = static_cast<int>(std::max_element(dists[r].begin(), dists[r].end()) -
                              dists[r].begin());
  }
  return out;
}

}  // namespace featlib

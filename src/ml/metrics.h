#pragma once

/// \file metrics.h
/// \brief Evaluation metrics used by the paper: AUC (binary), F1 (macro,
/// multi-class), RMSE (regression), plus accuracy and log-loss.

#include <vector>

namespace featlib {

/// Metrics the experiment harness reports (Table III/VI/VII/VIII).
enum class MetricKind {
  kAuc,
  kF1Macro,
  kRmse,
  kAccuracy,
  kLogLoss,
};

const char* MetricKindToString(MetricKind metric);

/// True for metrics where larger values mean better models (AUC, F1,
/// accuracy); false for losses (RMSE, log-loss).
bool MetricHigherIsBetter(MetricKind metric);

/// Area under the ROC curve via the rank statistic; ties share rank credit.
/// `labels` must be 0/1. Returns 0.5 when one class is absent.
double Auc(const std::vector<double>& labels, const std::vector<double>& scores);

/// Macro-averaged F1 over classes present in `labels`.
double F1Macro(const std::vector<int>& labels, const std::vector<int>& predictions,
               int num_classes);

/// Binary F1 of the positive class.
double F1Binary(const std::vector<int>& labels, const std::vector<int>& predictions);

double Accuracy(const std::vector<int>& labels, const std::vector<int>& predictions);

double Rmse(const std::vector<double>& targets, const std::vector<double>& predictions);

/// Binary cross-entropy with probability clipping at 1e-12.
double LogLoss(const std::vector<double>& labels, const std::vector<double>& probs);

}  // namespace featlib

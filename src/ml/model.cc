#include "ml/model.h"

#include "ml/deepfm.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/linear.h"

namespace featlib {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "LR";
    case ModelKind::kXgb:
      return "XGB";
    case ModelKind::kRandomForest:
      return "RF";
    case ModelKind::kDeepFm:
      return "DeepFM";
  }
  return "?";
}

std::unique_ptr<Model> MakeModel(ModelKind kind, TaskKind task, uint64_t seed) {
  switch (kind) {
    case ModelKind::kLogisticRegression: {
      if (task == TaskKind::kRegression) {
        LinearModelOptions options;
        options.seed = seed;
        return std::make_unique<LinearRegressionModel>(options);
      }
      LinearModelOptions options;
      options.seed = seed;
      return std::make_unique<LogisticRegressionModel>(task, options);
    }
    case ModelKind::kXgb: {
      GbdtOptions options;
      options.seed = seed;
      return std::make_unique<GbdtModel>(task, options);
    }
    case ModelKind::kRandomForest: {
      RandomForestOptions options;
      options.seed = seed;
      return std::make_unique<RandomForestModel>(task, options);
    }
    case ModelKind::kDeepFm: {
      DeepFmOptions options;
      options.seed = seed;
      return std::make_unique<DeepFmModel>(task, options);
    }
  }
  return nullptr;
}

}  // namespace featlib

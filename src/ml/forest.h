#pragma once

/// \file forest.h
/// \brief Random forest (bagging + per-split feature subsampling) over the
/// CART trees in tree.h.

#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace featlib {

struct RandomForestOptions {
  int n_trees = 40;
  TreeOptions tree;
  /// Bootstrap-sample fraction of the training rows per tree.
  double subsample = 1.0;
  uint64_t seed = 42;

  RandomForestOptions() {
    tree.max_depth = 10;
    tree.min_samples_leaf = 2;
    tree.min_samples_split = 4;
  }
};

/// \brief Random forest for classification (Gini trees, averaged class
/// distributions) and regression (mean-predicting gradient trees).
class RandomForestModel : public Model {
 public:
  RandomForestModel(TaskKind task, RandomForestOptions options = {});

  Status Fit(const Dataset& train) override;
  std::vector<double> PredictScore(const Dataset& ds) const override;
  std::vector<int> PredictClass(const Dataset& ds) const override;

  /// Impurity-decrease importances summed over all trees (used by ARDA's
  /// random-injection ranking).
  std::vector<double> FeatureImportances() const;

 private:
  TaskKind task_;
  RandomForestOptions options_;
  int num_classes_ = 2;
  std::vector<ClassificationTree> class_trees_;
  std::vector<GradientTree> reg_trees_;
  bool fitted_ = false;

  std::vector<std::vector<double>> PredictDistributions(const Dataset& ds) const;
};

}  // namespace featlib

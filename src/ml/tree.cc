#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace featlib {

namespace {

// Candidate features for one split: all, or a uniform subset without
// replacement when max_features is set.
std::vector<size_t> SplitFeatures(size_t d, int max_features, Rng* rng) {
  if (max_features <= 0 || static_cast<size_t>(max_features) >= d) {
    std::vector<size_t> all(d);
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  return rng->SampleIndices(d, static_cast<size_t>(max_features));
}

}  // namespace

int GradientTree::Build(const Dataset& ds, std::vector<uint32_t>* rows,
                        size_t begin, size_t end, const std::vector<double>& grad,
                        const std::vector<double>& hess, const TreeOptions& options,
                        int depth, Rng* rng) {
  const size_t count = end - begin;
  double g_total = 0.0;
  double h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_total += grad[(*rows)[i]];
    h_total += hess[(*rows)[i]];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = -g_total / (h_total + options.lambda);

  if (depth >= options.max_depth || count < options.min_samples_split) {
    return node_id;
  }

  const double parent_score = g_total * g_total / (h_total + options.lambda);
  double best_gain = options.min_gain;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, uint32_t>> sorted;
  sorted.reserve(count);
  for (size_t feature : SplitFeatures(ds.d, options.max_features, rng)) {
    sorted.clear();
    for (size_t i = begin; i < end; ++i) {
      sorted.emplace_back(ds.At((*rows)[i], feature), (*rows)[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    double g_left = 0.0;
    double h_left = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      g_left += grad[sorted[i].second];
      h_left += hess[sorted[i].second];
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t left_n = i + 1;
      const size_t right_n = count - left_n;
      if (left_n < options.min_samples_leaf || right_n < options.min_samples_leaf) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      const double gain =
          0.5 * (g_left * g_left / (h_left + options.lambda) +
                 g_right * g_right / (h_right + options.lambda) - parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition rows in place around the chosen split.
  auto middle = std::partition(
      rows->begin() + static_cast<ptrdiff_t>(begin),
      rows->begin() + static_cast<ptrdiff_t>(end), [&](uint32_t r) {
        return ds.At(r, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(middle - rows->begin());
  if (mid == begin || mid == end) return node_id;  // numerically degenerate

  if (feature_gains_.size() < ds.d) feature_gains_.resize(ds.d, 0.0);
  feature_gains_[static_cast<size_t>(best_feature)] += best_gain;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(ds, rows, begin, mid, grad, hess, options, depth + 1, rng);
  const int right = Build(ds, rows, mid, end, grad, hess, options, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void GradientTree::Fit(const Dataset& ds, const std::vector<uint32_t>& rows,
                       const std::vector<double>& grad,
                       const std::vector<double>& hess, const TreeOptions& options,
                       Rng* rng) {
  FEAT_CHECK(!rows.empty(), "GradientTree::Fit with no rows");
  nodes_.clear();
  feature_gains_.assign(ds.d, 0.0);
  std::vector<uint32_t> mutable_rows = rows;
  Build(ds, &mutable_rows, 0, mutable_rows.size(), grad, hess, options, 0, rng);
}

double GradientTree::PredictRow(const Dataset& ds, size_t row) const {
  FEAT_CHECK(!nodes_.empty(), "PredictRow before Fit");
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    node = ds.At(row, static_cast<size_t>(nd.feature)) <= nd.threshold ? nd.left
                                                                       : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += (c / total) * (c / total);
  return 1.0 - sum_sq;
}

}  // namespace

int ClassificationTree::Build(const Dataset& ds, std::vector<uint32_t>* rows,
                              size_t begin, size_t end, int num_classes,
                              const TreeOptions& options, int depth, Rng* rng) {
  const size_t count = end - begin;
  std::vector<double> counts(static_cast<size_t>(num_classes), 0.0);
  for (size_t i = begin; i < end; ++i) {
    const int cls = static_cast<int>(std::llround(ds.y[(*rows)[i]]));
    counts[static_cast<size_t>(cls)] += 1.0;
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    std::vector<double> dist = counts;
    for (double& c : dist) c /= static_cast<double>(count);
    nodes_[node_id].distribution = std::move(dist);
  }

  const double parent_gini = GiniFromCounts(counts, static_cast<double>(count));
  if (depth >= options.max_depth || count < options.min_samples_split ||
      parent_gini <= 0.0) {
    return node_id;
  }

  double best_score = parent_gini - 1e-9;  // must strictly improve
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, uint32_t>> sorted;
  sorted.reserve(count);
  std::vector<double> left_counts(static_cast<size_t>(num_classes));
  for (size_t feature : SplitFeatures(ds.d, options.max_features, rng)) {
    sorted.clear();
    for (size_t i = begin; i < end; ++i) {
      sorted.emplace_back(ds.At((*rows)[i], feature), (*rows)[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    for (size_t i = 0; i + 1 < count; ++i) {
      const int cls = static_cast<int>(std::llround(ds.y[sorted[i].second]));
      left_counts[static_cast<size_t>(cls)] += 1.0;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const double left_n = static_cast<double>(i + 1);
      const double right_n = static_cast<double>(count) - left_n;
      if (left_n < static_cast<double>(options.min_samples_leaf) ||
          right_n < static_cast<double>(options.min_samples_leaf)) {
        continue;
      }
      std::vector<double> right_counts(static_cast<size_t>(num_classes));
      for (size_t c = 0; c < right_counts.size(); ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double weighted =
          (left_n * GiniFromCounts(left_counts, left_n) +
           right_n * GiniFromCounts(right_counts, right_n)) /
          static_cast<double>(count);
      if (weighted < best_score) {
        best_score = weighted;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  auto middle = std::partition(
      rows->begin() + static_cast<ptrdiff_t>(begin),
      rows->begin() + static_cast<ptrdiff_t>(end), [&](uint32_t r) {
        return ds.At(r, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(middle - rows->begin());
  if (mid == begin || mid == end) return node_id;

  if (feature_gains_.size() < ds.d) feature_gains_.resize(ds.d, 0.0);
  feature_gains_[static_cast<size_t>(best_feature)] +=
      (parent_gini - best_score) * static_cast<double>(count);

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(ds, rows, begin, mid, num_classes, options, depth + 1, rng);
  const int right = Build(ds, rows, mid, end, num_classes, options, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void ClassificationTree::Fit(const Dataset& ds, const std::vector<uint32_t>& rows,
                             int num_classes, const TreeOptions& options, Rng* rng) {
  FEAT_CHECK(!rows.empty(), "ClassificationTree::Fit with no rows");
  nodes_.clear();
  feature_gains_.assign(ds.d, 0.0);
  std::vector<uint32_t> mutable_rows = rows;
  Build(ds, &mutable_rows, 0, mutable_rows.size(), num_classes, options, 0, rng);
}

const std::vector<double>& ClassificationTree::PredictDistribution(const Dataset& ds,
                                                                   size_t row) const {
  FEAT_CHECK(!nodes_.empty(), "PredictDistribution before Fit");
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    node = ds.At(row, static_cast<size_t>(nd.feature)) <= nd.threshold ? nd.left
                                                                       : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].distribution;
}

}  // namespace featlib

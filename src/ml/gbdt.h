#pragma once

/// \file gbdt.h
/// \brief Second-order gradient boosting ("XGB" in the paper's tables):
/// regularized leaf weights, shrinkage, logistic loss for classification
/// (one-vs-rest for multi-class) and squared loss for regression.

#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace featlib {

struct GbdtOptions {
  int n_rounds = 50;
  double learning_rate = 0.2;
  TreeOptions tree;
  /// Row subsample per round (stochastic gradient boosting).
  double subsample = 1.0;
  uint64_t seed = 42;

  GbdtOptions() {
    tree.max_depth = 4;
    tree.min_samples_leaf = 2;
    tree.min_samples_split = 4;
    tree.lambda = 1.0;
  }
};

/// \brief XGBoost-style gradient boosted trees.
class GbdtModel : public Model {
 public:
  GbdtModel(TaskKind task, GbdtOptions options = {});

  Status Fit(const Dataset& train) override;
  std::vector<double> PredictScore(const Dataset& ds) const override;
  std::vector<int> PredictClass(const Dataset& ds) const override;

  /// Split-gain feature importances summed over all trees and heads
  /// (Featuretools+GBDT selector).
  std::vector<double> FeatureImportances() const;

 private:
  TaskKind task_;
  GbdtOptions options_;
  int num_classes_ = 2;
  double base_score_ = 0.0;
  // heads x rounds trees; one head for binary/regression, k for multi-class.
  std::vector<std::vector<GradientTree>> heads_;
  size_t d_ = 0;
  bool fitted_ = false;

  std::vector<double> RawScores(const Dataset& ds, size_t head) const;
};

}  // namespace featlib

#pragma once

/// \file model.h
/// \brief Downstream-model interface and factory. The paper evaluates four
/// models: Logistic Regression (LR), XGBoost-style boosting (XGB), Random
/// Forest (RF) and DeepFM; a linear regressor backs the regression tasks.

#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace featlib {

enum class ModelKind {
  kLogisticRegression,  // "LR"; linear regression for regression tasks
  kXgb,                 // second-order gradient boosting
  kRandomForest,        // "RF"
  kDeepFm,              // "DeepFM"; binary classification only
};

const char* ModelKindToString(ModelKind kind);

/// \brief A trainable downstream model.
///
/// Models own their preprocessing (standardization where needed) but expect
/// NaN-free inputs: impute with ImputeNanInPlace before Fit/Predict.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on `train`. Must be called before any Predict*.
  virtual Status Fit(const Dataset& train) = 0;

  /// Binary classification: P(class 1) per row. Regression: the prediction.
  /// Multi-class models return the max-class probability (use PredictClass).
  virtual std::vector<double> PredictScore(const Dataset& ds) const = 0;

  /// Class prediction for classification tasks (argmax / threshold 0.5).
  virtual std::vector<int> PredictClass(const Dataset& ds) const = 0;
};

/// Creates a model of the given kind configured for `task`. DeepFM rejects
/// non-binary tasks at Fit time. `seed` controls all internal randomness.
std::unique_ptr<Model> MakeModel(ModelKind kind, TaskKind task, uint64_t seed);

}  // namespace featlib

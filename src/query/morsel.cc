#include "query/morsel.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/aggregate.h"
#include "query/bitset.h"
#include "query/kernel_dispatch.h"
#include "query/predicate.h"

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

double Nan() { return std::nan(""); }

/// Selected-row iteration in ascending row order — the same visit order as
/// the single-pass kernels' for_each_selected (query/kernels.cc), which the
/// bit-identity contract leans on.
template <typename Body>
void ForEachSelected(const Bitset* mask, size_t n_rows, Body&& body) {
  if (mask == nullptr) {
    for (size_t row = 0; row < n_rows; ++row) body(row);
  } else {
    mask->ForEachSetBit(body);
  }
}

// ---------------------------------------------------------------------------
// Combiners: one per candidate, folding morsel after morsel into per-group
// accumulator state. Each family replicates one oracle code path *exactly*
// (same accumulation expressions, same row order, same finalize gates), so a
// morsel-streamed result is byte-identical to the single-pass kernels at any
// morsel size. State is bounded by the number of groups, never rows — except
// the buffer family, whose oracle (MODE/MAD/MEDIAN) is inherently holistic.
// ---------------------------------------------------------------------------

/// Per-candidate streaming accumulator over morsels.
///
/// Thread-safety: a combiner is owned by exactly one candidate; the combine
/// fan-out runs disjoint candidates on disjoint combiners, reading shared
/// immutable MorselData. Grow/Absorb are called once per morsel in morsel
/// order; StateBytes must be O(1) (it is polled every morsel for the
/// memory-budget accounting).
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// True for two-pass aggregates (VAR family, KURTOSIS): the pipeline
  /// re-streams every morsel a second time after BeginSecondSweep().
  virtual bool NeedsSecondSweep() const { return false; }

  /// Extends per-group state to `n_groups` (the builder's running group
  /// count after the current morsel; monotone across morsels).
  virtual void Grow(size_t n_groups) = 0;

  /// Transition from sweep 1 accumulators to sweep 2 state (e.g. means).
  virtual void BeginSecondSweep() {}

  /// Folds one morsel's rows in. `row_groups`/`mask`/`view` are morsel-local
  /// (row indices in [0, n_rows)); group ids are global.
  virtual void Absorb(int sweep, const uint32_t* row_groups, size_t n_rows,
                      const Bitset* mask, const double* view) = 0;

  /// Per-group feature values over the final group space.
  virtual std::vector<double> Finalize(size_t n_groups) = 0;

  /// Current accumulator heap bytes (O(1); incrementally tracked).
  virtual size_t StateBytes() const = 0;
};

/// Shared presence/value tallies + the streaming skeleton of
/// AggregateStreaming: per selected row, count presence, then forward the
/// non-null value. Exactly the `stream` lambda of query/kernels.cc.
class TallyCombiner : public Combiner {
 public:
  void Grow(size_t n_groups) override {
    if (n_groups > present_.size()) {
      present_.resize(n_groups, 0);
      value_count_.resize(n_groups, 0);
      GrowState(n_groups);
    }
  }

 protected:
  virtual void GrowState(size_t n_groups) = 0;

  template <typename OnValue>
  void Stream(const uint32_t* row_groups, size_t n_rows, const Bitset* mask,
              const double* view, OnValue&& on_value) {
    ForEachSelected(mask, n_rows, [&](size_t row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) return;
      ++present_[g];
      if (view == nullptr) return;
      const double v = view[row];
      if (std::isnan(v)) return;  // null cell
      ++value_count_[g];
      on_value(g, v);
    });
  }

  size_t TallyBytes() const {
    return (present_.size() + value_count_.size()) * sizeof(uint32_t);
  }

  std::vector<uint32_t> present_;
  std::vector<uint32_t> value_count_;
};

/// COUNT(*) / COUNT(attr): presence or non-null tally.
class CountCombiner final : public TallyCombiner {
 public:
  explicit CountCombiner(bool has_attr) : has_attr_(has_attr) {}

  void Absorb(int, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    Stream(row_groups, n_rows, mask, view, [](uint32_t, double) {});
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      if (present_[g] == 0) continue;
      feature[g] =
          static_cast<double>(has_attr_ ? value_count_[g] : present_[g]);
    }
    return feature;
  }

  size_t StateBytes() const override { return TallyBytes(); }

 private:
  void GrowState(size_t) override {}

  const bool has_attr_;
};

/// SUM / AVG: one left-to-right running sum per group (the carried
/// accumulator sees the exact value sequence of the single pass).
class SumAvgCombiner final : public TallyCombiner {
 public:
  explicit SumAvgCombiner(bool avg) : avg_(avg) {}

  void Absorb(int, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    Stream(row_groups, n_rows, mask, view,
           [&](uint32_t g, double v) { sum_[g] += v; });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      if (present_[g] == 0 || value_count_[g] == 0) continue;
      feature[g] =
          avg_ ? sum_[g] / static_cast<double>(value_count_[g]) : sum_[g];
    }
    return feature;
  }

  size_t StateBytes() const override {
    return TallyBytes() + sum_.size() * sizeof(double);
  }

 private:
  void GrowState(size_t n_groups) override { sum_.resize(n_groups, 0.0); }

  const bool avg_;
  std::vector<double> sum_;
};

/// MIN / MAX: the streaming kernel's first-value-or-better test, with
/// value_count_ already incremented for the current value (same as the
/// kernel, where the tally precedes on_value).
class MinMaxCombiner final : public TallyCombiner {
 public:
  explicit MinMaxCombiner(bool is_min) : is_min_(is_min) {}

  void Absorb(int, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    Stream(row_groups, n_rows, mask, view, [&](uint32_t g, double v) {
      if (value_count_[g] == 1 || (is_min_ ? v < best_[g] : v > best_[g])) {
        best_[g] = v;
      }
    });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      if (present_[g] > 0 && value_count_[g] > 0) feature[g] = best_[g];
    }
    return feature;
  }

  size_t StateBytes() const override {
    return TallyBytes() + best_.size() * sizeof(double);
  }

 private:
  void GrowState(size_t n_groups) override { best_.resize(n_groups, 0.0); }

  const bool is_min_;
  std::vector<double> best_;
};

/// VAR / VAR_SAMPLE / STD / STD_SAMPLE: the streaming kernel is two-pass
/// (global means first), so this combiner drives the pipeline's second
/// sweep — sweep 1 accumulates sums, sweep 2 squared deviations against the
/// means, both in global row order.
class VarCombiner final : public TallyCombiner {
 public:
  VarCombiner(bool sample, bool std_dev) : sample_(sample), std_dev_(std_dev) {}

  bool NeedsSecondSweep() const override { return true; }

  void BeginSecondSweep() override {
    mean_ = sum_;
    for (size_t g = 0; g < mean_.size(); ++g) {
      if (value_count_[g] > 0) {
        mean_[g] /= static_cast<double>(value_count_[g]);
      }
    }
    ss_.assign(mean_.size(), 0.0);
  }

  void Absorb(int sweep, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    if (sweep == 1) {
      Stream(row_groups, n_rows, mask, view,
             [&](uint32_t g, double v) { sum_[g] += v; });
      return;
    }
    if (view == nullptr) return;
    // Second pass: no re-tallying (the kernel's second loop bypasses the
    // stream skeleton too), same deviation expression, same row order.
    ForEachSelected(mask, n_rows, [&](size_t row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) return;
      const double v = view[row];
      if (std::isnan(v)) return;
      const double d = v - mean_[g];
      ss_[g] += d * d;
    });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      const size_t cnt = value_count_[g];
      if (present_[g] == 0 || cnt == 0 || (sample_ && cnt < 2)) continue;
      const double denom =
          sample_ ? static_cast<double>(cnt - 1) : static_cast<double>(cnt);
      const double var = ss_[g] / denom;
      feature[g] = std_dev_ ? std::sqrt(var) : var;
    }
    return feature;
  }

  size_t StateBytes() const override {
    return TallyBytes() +
           (sum_.size() + mean_.size() + ss_.size()) * sizeof(double);
  }

 private:
  void GrowState(size_t n_groups) override { sum_.resize(n_groups, 0.0); }

  const bool sample_;
  const bool std_dev_;
  std::vector<double> sum_;
  std::vector<double> mean_;
  std::vector<double> ss_;
};

/// KURTOSIS: the oracle (ComputeAggregate) is two-pass over the group's
/// value slice — mean, then central 2nd/4th moments with the exact
/// expression shape `d*d` / `d*d*d*d` — reproduced here across morsels.
class KurtosisCombiner final : public TallyCombiner {
 public:
  bool NeedsSecondSweep() const override { return true; }

  void BeginSecondSweep() override {
    mean_ = sum_;
    for (size_t g = 0; g < mean_.size(); ++g) {
      if (value_count_[g] > 0) {
        mean_[g] /= static_cast<double>(value_count_[g]);
      }
    }
    m2_.assign(mean_.size(), 0.0);
    m4_.assign(mean_.size(), 0.0);
  }

  void Absorb(int sweep, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    if (sweep == 1) {
      Stream(row_groups, n_rows, mask, view,
             [&](uint32_t g, double v) { sum_[g] += v; });
      return;
    }
    if (view == nullptr) return;
    ForEachSelected(mask, n_rows, [&](size_t row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) return;
      const double v = view[row];
      if (std::isnan(v)) return;
      const double d = v - mean_[g];
      m2_[g] += d * d;
      m4_[g] += d * d * d * d;
    });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      const size_t cnt = value_count_[g];
      if (present_[g] == 0 || cnt < 2) continue;
      const double m2 = m2_[g] / static_cast<double>(cnt);
      const double m4 = m4_[g] / static_cast<double>(cnt);
      if (m2 <= 0.0) continue;
      feature[g] = m4 / (m2 * m2) - 3.0;  // excess kurtosis
    }
    return feature;
  }

  size_t StateBytes() const override {
    return TallyBytes() +
           (sum_.size() + mean_.size() + m2_.size() + m4_.size()) *
               sizeof(double);
  }

 private:
  void GrowState(size_t n_groups) override { sum_.resize(n_groups, 0.0); }

  std::vector<double> sum_;
  std::vector<double> mean_;
  std::vector<double> m2_;
  std::vector<double> m4_;
};

/// COUNT_DISTINCT / ENTROPY: per-group ordered value->count map. The oracle
/// sorts the slice and scans equal-value runs; both outputs depend only on
/// the run counts in ascending value order, which is exactly what std::map
/// holds (operator< merges -0.0/0.0 like sorted equality does, and views
/// never contain NaN — null cells are skipped before insertion). Memory is
/// bounded by distinct values, not rows.
class CountMapCombiner final : public TallyCombiner {
 public:
  explicit CountMapCombiner(bool entropy) : entropy_(entropy) {}

  void Absorb(int, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    Stream(row_groups, n_rows, mask, view, [&](uint32_t g, double v) {
      auto [it, inserted] = maps_[g].try_emplace(v, 0);
      ++it->second;
      if (inserted) ++entries_;
    });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      if (present_[g] == 0) continue;
      if (!entropy_) {
        // COUNT_DISTINCT of an empty slice is 0, not NaN (oracle semantics:
        // the group was selected, it just has no non-null values).
        feature[g] = static_cast<double>(maps_[g].size());
        continue;
      }
      const size_t n = value_count_[g];
      if (n == 0) continue;  // ENTROPY of an empty slice is NaN
      double h = 0.0;
      for (const auto& [value, count] : maps_[g]) {
        (void)value;
        const double p =
            static_cast<double>(count) / static_cast<double>(n);
        h -= p * std::log(p);
      }
      feature[g] = h;
    }
    return feature;
  }

  size_t StateBytes() const override {
    // ~rb-tree node: payload + 3 pointers + color word.
    constexpr size_t kNodeBytes =
        sizeof(std::pair<const double, uint32_t>) + 4 * sizeof(void*);
    return TallyBytes() +
           maps_.size() * sizeof(std::map<double, uint32_t>) +
           entries_ * kNodeBytes;
  }

 private:
  void GrowState(size_t n_groups) override { maps_.resize(n_groups); }

  const bool entropy_;
  std::vector<std::map<double, uint32_t>> maps_;
  size_t entries_ = 0;
};

/// MODE / MAD / MEDIAN: holistic aggregates whose oracle sorts (or
/// re-orders) a copy of the whole slice — no sublinear merge exists that
/// stays bit-identical (e.g. MODE of mixed -0.0/0.0 returns whatever bit
/// pattern the unstable sort left last in the winning run). The combiner
/// therefore rebuilds the slice: values append in global row order, so the
/// finalize input is byte-identical to the single-pass materialized slice.
class BufferCombiner final : public TallyCombiner {
 public:
  explicit BufferCombiner(AggFunction fn) : fn_(fn) {}

  void Absorb(int, const uint32_t* row_groups, size_t n_rows,
              const Bitset* mask, const double* view) override {
    Stream(row_groups, n_rows, mask, view, [&](uint32_t g, double v) {
      buffers_[g].push_back(v);
      ++values_;
    });
  }

  std::vector<double> Finalize(size_t n_groups) override {
    std::vector<double> feature(n_groups, Nan());
    for (size_t g = 0; g < n_groups; ++g) {
      if (present_[g] == 0) continue;
      feature[g] = ComputeAggregate(fn_, buffers_[g]);
    }
    return feature;
  }

  size_t StateBytes() const override {
    return TallyBytes() +
           buffers_.size() * sizeof(std::vector<double>) +
           values_ * sizeof(double);
  }

 private:
  void GrowState(size_t n_groups) override { buffers_.resize(n_groups); }

  const AggFunction fn_;
  std::vector<std::vector<double>> buffers_;
  size_t values_ = 0;
};

std::unique_ptr<Combiner> MakeCombiner(AggFunction fn, bool has_attr) {
  switch (fn) {
    case AggFunction::kCount:
      return std::make_unique<CountCombiner>(has_attr);
    case AggFunction::kSum:
      return std::make_unique<SumAvgCombiner>(/*avg=*/false);
    case AggFunction::kAvg:
      return std::make_unique<SumAvgCombiner>(/*avg=*/true);
    case AggFunction::kMin:
      return std::make_unique<MinMaxCombiner>(/*is_min=*/true);
    case AggFunction::kMax:
      return std::make_unique<MinMaxCombiner>(/*is_min=*/false);
    case AggFunction::kVar:
      return std::make_unique<VarCombiner>(false, false);
    case AggFunction::kVarSample:
      return std::make_unique<VarCombiner>(true, false);
    case AggFunction::kStd:
      return std::make_unique<VarCombiner>(false, true);
    case AggFunction::kStdSample:
      return std::make_unique<VarCombiner>(true, true);
    case AggFunction::kKurtosis:
      return std::make_unique<KurtosisCombiner>();
    case AggFunction::kCountDistinct:
      return std::make_unique<CountMapCombiner>(/*entropy=*/false);
    case AggFunction::kEntropy:
      return std::make_unique<CountMapCombiner>(/*entropy=*/true);
    case AggFunction::kMode:
    case AggFunction::kMad:
    case AggFunction::kMedian:
      return std::make_unique<BufferCombiner>(fn);
  }
  return std::make_unique<CountCombiner>(has_attr);  // unreachable
}

// ---------------------------------------------------------------------------
// Compiled batch: artifact specs deduplicated across candidates (same
// sharing structure as the planner's GroupReq/MaskReq/ViewReq DAG) plus one
// combiner per candidate.
// ---------------------------------------------------------------------------

struct GroupSpec {
  explicit GroupSpec(std::vector<std::string> keys)
      : builder(std::move(keys)) {}
  GroupIndexBuilder builder;
};

struct FilterSpec {
  std::vector<Predicate> preds;  // active (non-trivial) conjuncts
};

struct ViewSpec {
  std::string attr;
};

struct CandPlan {
  size_t slot = 0;  // index into queries / slot_errors / result vectors
  size_t group = 0;
  ptrdiff_t filter = -1;  // -1 = unfiltered
  ptrdiff_t view = -1;    // -1 = COUNT(*) without an agg attribute
  std::unique_ptr<Combiner> combiner;
  bool failed = false;
  Status error;  // merge-fault slot for the current morsel (disjoint writes)
};

/// Artifacts of one in-flight morsel, indexed by spec position.
struct MorselData {
  size_t rows = 0;
  std::vector<std::vector<uint32_t>> row_groups;  // per group spec
  std::vector<size_t> num_groups_after;           // builder count per spec
  std::vector<Bitset> masks;                      // per filter spec
  std::vector<std::vector<double>> views;         // per view spec
};

}  // namespace

MorselSet MorselSet::Split(size_t n_rows, size_t morsel_rows) {
  MorselSet set;
  if (n_rows == 0) return set;
  const size_t step = morsel_rows == 0 ? n_rows : morsel_rows;
  set.morsels_.reserve((n_rows + step - 1) / step);
  for (size_t begin = 0; begin < n_rows; begin += step) {
    set.morsels_.push_back(Morsel{begin, std::min(begin + step, n_rows)});
  }
  return set;
}

std::vector<double> ScatterPerGroup(const std::vector<double>& per_group,
                                    const std::vector<uint32_t>& train_map) {
  std::vector<double> out(train_map.size(), Nan());
  for (size_t row = 0; row < train_map.size(); ++row) {
    const uint32_t g = train_map[row];
    if (g != kNoGroup) out[row] = per_group[g];
  }
  return out;
}

Result<MorselResult> ExecuteMorsels(const std::vector<AggQuery>& queries,
                                    const Table& relevant,
                                    const MorselOptions& options,
                                    std::vector<Status>* slot_errors) {
  const bool isolated = slot_errors != nullptr;
  if (isolated) slot_errors->assign(queries.size(), Status::OK());
  const ExecContext* ctx = options.ctx;
  const KernelOps& ops =
      options.ops != nullptr ? *options.ops : ResolveKernelOps(KernelBackend::kAuto);

  // --- Compile: validate, dedup group/filter/view specs, build combiners.
  std::vector<GroupSpec> group_specs;
  std::vector<FilterSpec> filter_specs;
  std::vector<ViewSpec> view_specs;
  std::vector<CandPlan> cands;
  std::unordered_map<std::string, size_t> group_of, filter_of, view_of;
  std::vector<std::pair<std::string, const Column*>> needed_cols;
  std::unordered_map<std::string, size_t> col_of;

  auto need_column = [&](const std::string& name) -> Status {
    if (col_of.emplace(name, needed_cols.size()).second) {
      FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(name));
      needed_cols.emplace_back(name, col);
    }
    return Status::OK();
  };

  for (size_t slot = 0; slot < queries.size(); ++slot) {
    const AggQuery& q = queries[slot];
    Status st = q.Validate(relevant);
    std::vector<Predicate> active;
    if (st.ok()) {
      for (const Predicate& p : q.predicates) {
        if (!p.IsTrivial()) active.push_back(p);
      }
      // Bind once up front so a bad filter (type mismatch) fails its
      // candidate at compile time, not mid-pipeline as a batch error.
      if (!active.empty()) st = CompiledFilter::Compile(active, relevant).status();
    }
    if (!st.ok()) {
      if (!isolated) return st;
      (*slot_errors)[slot] = std::move(st);
      continue;
    }

    CandPlan cand;
    cand.slot = slot;
    const std::string group_key = StrJoin(q.group_keys, "\x1f");
    if (auto [it, inserted] = group_of.try_emplace(group_key, group_specs.size());
        inserted) {
      cand.group = group_specs.size();
      group_specs.emplace_back(q.group_keys);
    } else {
      cand.group = it->second;
    }
    for (const std::string& k : q.group_keys) FEAT_RETURN_NOT_OK(need_column(k));

    if (!active.empty()) {
      std::vector<std::string> pred_keys;
      pred_keys.reserve(active.size());
      for (const Predicate& p : active) pred_keys.push_back(p.CacheKey());
      const std::string filter_key = StrJoin(pred_keys, "\x1d");
      if (auto [it, inserted] =
              filter_of.try_emplace(filter_key, filter_specs.size());
          inserted) {
        cand.filter = static_cast<ptrdiff_t>(filter_specs.size());
        filter_specs.push_back(FilterSpec{active});
      } else {
        cand.filter = static_cast<ptrdiff_t>(it->second);
      }
      for (const Predicate& p : active) FEAT_RETURN_NOT_OK(need_column(p.attr));
    }

    if (!q.agg_attr.empty()) {
      if (auto [it, inserted] = view_of.try_emplace(q.agg_attr, view_specs.size());
          inserted) {
        cand.view = static_cast<ptrdiff_t>(view_specs.size());
        view_specs.push_back(ViewSpec{q.agg_attr});
      } else {
        cand.view = static_cast<ptrdiff_t>(it->second);
      }
      FEAT_RETURN_NOT_OK(need_column(q.agg_attr));
    }

    cand.combiner = MakeCombiner(q.agg, !q.agg_attr.empty());
    cands.push_back(std::move(cand));
  }

  MorselResult result;
  result.per_group.resize(queries.size());
  result.candidate_group.assign(queries.size(), MorselResult::kNoGroupSpec);
  MorselExecStats& stats = result.stats;

  const MorselSet set = MorselSet::Split(relevant.num_rows(), options.morsel_rows);
  stats.morsels = set.size();

  bool needs_sweep2 = false;
  for (const CandPlan& c : cands) {
    needs_sweep2 = needs_sweep2 || c.combiner->NeedsSecondSweep();
  }

  // --- Memory accounting: morsel artifacts charge/release per in-flight
  // morsel; combiner-state growth charges incrementally and stays. The
  // executor mirrors every ExecContext charge into its own peak tracker so
  // stats are meaningful without a context.
  size_t bytes_per_row = 0;
  for (const auto& [name, col] : needed_cols) {
    (void)name;
    bytes_per_row += 1 /*validity byte*/ +
                     (col->type() == DataType::kString ? sizeof(int32_t)
                                                       : sizeof(int64_t));
  }
  bytes_per_row += group_specs.size() * sizeof(uint32_t) +
                   view_specs.size() * sizeof(double);
  auto estimate_bytes = [&](size_t rows) {
    return rows * bytes_per_row + filter_specs.size() * (rows / 8 + 16);
  };
  size_t tracked_now = 0;
  auto charge_tracked = [&](size_t bytes) -> Status {
    FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(ctx, bytes));
    tracked_now += bytes;
    stats.peak_artifact_bytes = std::max(stats.peak_artifact_bytes, tracked_now);
    return Status::OK();
  };
  auto release_tracked = [&](size_t bytes) {
    ExecContext::ReleaseFor(ctx, bytes);
    tracked_now -= std::min(bytes, tracked_now);
  };
  size_t state_charged = 0;
  auto charge_state_growth = [&]() -> Status {
    size_t state_now = 0;
    for (const CandPlan& c : cands) {
      if (!c.failed) state_now += c.combiner->StateBytes();
    }
    if (state_now > state_charged) {
      FEAT_RETURN_NOT_OK(charge_tracked(state_now - state_charged));
      state_charged = state_now;
    }
    return Status::OK();
  };

  // --- Build one morsel's artifacts. Builds are strictly sequential (the
  // group-id first-seen order across morsels is the determinism contract),
  // on the caller thread or the one prefetch thread.
  auto build_morsel = [&](int sweep, const Morsel& m) -> Result<MorselData> {
    FEAT_RETURN_NOT_OK(FaultPoint("morsel.build"));
    std::vector<uint32_t> idx(m.rows());
    std::iota(idx.begin(), idx.end(), static_cast<uint32_t>(m.begin));
    Table sub;
    for (const auto& [name, col] : needed_cols) {
      FEAT_RETURN_NOT_OK(sub.AddColumn(name, col->Take(idx)));
    }
    MorselData md;
    md.rows = m.rows();
    md.row_groups.reserve(group_specs.size());
    md.num_groups_after.reserve(group_specs.size());
    for (GroupSpec& gs : group_specs) {
      FEAT_ASSIGN_OR_RETURN(std::vector<uint32_t> ids,
                            sweep == 1 ? gs.builder.AppendMorsel(sub)
                                       : gs.builder.MapMorsel(sub));
      md.row_groups.push_back(std::move(ids));
      md.num_groups_after.push_back(gs.builder.num_groups());
    }
    md.masks.reserve(filter_specs.size());
    for (const FilterSpec& fs : filter_specs) {
      FEAT_ASSIGN_OR_RETURN(CompiledFilter filter,
                            CompiledFilter::Compile(fs.preds, sub));
      Bitset bits(md.rows);
      ops.build_filter_mask(filter, &bits);
      md.masks.push_back(std::move(bits));
    }
    md.views.reserve(view_specs.size());
    for (const ViewSpec& vs : view_specs) {
      FEAT_ASSIGN_OR_RETURN(const Column* col, sub.GetColumn(vs.attr));
      std::vector<double> view(md.rows);
      for (size_t row = 0; row < md.rows; ++row) view[row] = col->AsDouble(row);
      md.views.push_back(std::move(view));
    }
    return md;
  };

  // --- Fold one morsel into every live combiner (parallel across
  // candidates: disjoint combiners, shared immutable MorselData).
  auto combine_morsel = [&](int sweep, const MorselData& md) -> Status {
    auto run_one = [&](size_t i) {
      CandPlan& c = cands[i];
      if (c.failed) return;
      if (sweep == 2 && !c.combiner->NeedsSecondSweep()) return;
      Status st = FaultPoint("morsel.merge");
      if (!st.ok()) {
        c.error = std::move(st);
        return;
      }
      c.combiner->Grow(md.num_groups_after[c.group]);
      const Bitset* mask = c.filter >= 0 ? &md.masks[c.filter] : nullptr;
      const double* view = c.view >= 0 ? md.views[c.view].data() : nullptr;
      c.combiner->Absorb(sweep, md.row_groups[c.group].data(), md.rows, mask,
                         view);
    };
    if (options.pool != nullptr) {
      FEAT_RETURN_NOT_OK(options.pool->ParallelFor(cands.size(), run_one, 0, ctx));
    } else {
      for (size_t i = 0; i < cands.size(); ++i) run_one(i);
    }
    for (CandPlan& c : cands) {
      if (c.error.ok()) continue;
      Status err = std::move(c.error);
      c.error = Status::OK();
      if (!isolated) return err;
      // A partially-absorbed candidate is unusable; siblings are untouched
      // (disjoint combiners), so only this slot fails.
      (*slot_errors)[c.slot] = std::move(err);
      c.failed = true;
    }
    return Status::OK();
  };

  // --- The pipeline: for each sweep, run morsels in order; while morsel i
  // combines on the pool, the AsyncStage thread builds morsel i+1
  // (double-buffered: at most two morsels' artifacts in flight, each
  // charged while in flight).
  auto run_sweep = [&](int sweep) -> Status {
    // Declared before the stage so the stage's destructor (which joins a
    // still-active build on an error-path unwind) runs first — the prefetch
    // thread writes `next`.
    MorselData cur;
    MorselData next;
    AsyncStage stage;
    FEAT_RETURN_NOT_OK(charge_tracked(estimate_bytes(set[0].rows())));
    {
      WallTimer timer;
      FEAT_ASSIGN_OR_RETURN(cur, build_morsel(sweep, set[0]));
      stats.build_seconds += timer.Seconds();
    }
    for (size_t i = 0; i < set.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      bool launched = false;
      if (i + 1 < set.size()) {
        FEAT_RETURN_NOT_OK(charge_tracked(estimate_bytes(set[i + 1].rows())));
        const Morsel next_morsel = set[i + 1];
        if (options.prefetch) {
          stage.Launch([&, sweep, next_morsel]() -> Status {
            WallTimer timer;
            FEAT_ASSIGN_OR_RETURN(next, build_morsel(sweep, next_morsel));
            stats.build_seconds += timer.Seconds();  // ordered by Await join
            return Status::OK();
          });
          ++stats.prefetched_builds;
          launched = true;
        } else {
          WallTimer timer;
          FEAT_ASSIGN_OR_RETURN(next, build_morsel(sweep, next_morsel));
          stats.build_seconds += timer.Seconds();
        }
      }
      WallTimer combine_timer;
      Status combine_st = combine_morsel(sweep, cur);
      stats.combine_seconds += combine_timer.Seconds();
      release_tracked(estimate_bytes(set[i].rows()));
      if (launched) {
        Status built = stage.Await();
        if (combine_st.ok()) combine_st = std::move(built);
      }
      FEAT_RETURN_NOT_OK(combine_st);
      FEAT_RETURN_NOT_OK(charge_state_growth());
      cur = std::move(next);
      next = MorselData();
    }
    return Status::OK();
  };

  if (!set.empty() && !cands.empty()) {
    stats.sweeps = 1;
    FEAT_RETURN_NOT_OK(run_sweep(1));
    if (needs_sweep2) {
      stats.sweeps = 2;
      for (CandPlan& c : cands) {
        if (!c.failed && c.combiner->NeedsSecondSweep()) {
          c.combiner->BeginSecondSweep();
        }
      }
      FEAT_RETURN_NOT_OK(charge_state_growth());
      FEAT_RETURN_NOT_OK(run_sweep(2));
    }
  }

  // --- Finalize: per-group features, then the key-map-only group indexes.
  size_t feature_bytes = 0;
  for (CandPlan& c : cands) {
    if (c.failed) continue;
    result.per_group[c.slot] =
        c.combiner->Finalize(group_specs[c.group].builder.num_groups());
    result.candidate_group[c.slot] = c.group;
    feature_bytes += result.per_group[c.slot].size() * sizeof(double);
  }
  FEAT_RETURN_NOT_OK(charge_tracked(feature_bytes));
  release_tracked(state_charged);  // accumulators die with the combiners
  result.group_indexes.reserve(group_specs.size());
  for (GroupSpec& gs : group_specs) {
    FEAT_RETURN_NOT_OK(charge_tracked(gs.builder.SizeBytes()));
    result.group_indexes.push_back(
        std::make_shared<const GroupIndex>(std::move(gs.builder).Finish()));
  }
  return result;
}

}  // namespace featlib

#include "query/sql_parser.h"

#include <cctype>
#include <cmath>

#include "common/str_util.h"

namespace featlib {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEquals,
  kGreaterEquals,
  kLessEquals,
  kGreater,
  kLess,
  kNotEquals,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier spelling / string contents
  double number = 0.0;  // kNumber value
  bool is_integer = false;
  size_t pos = 0;  // byte offset in the input, for error messages
};

/// Tokenizes the dialect; fails on characters outside it.
class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      FEAT_ASSIGN_OR_RETURN(Token t, Next());
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.pos = input_.size();
    out.push_back(end);
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size()) {
      if (std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      } else if (input_[pos_] == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        // SQL line comment: skip to end of line.
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status ErrorAt(size_t pos, const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("SQL parse error at offset %zu: %s", pos, msg.c_str()));
  }

  Result<Token> Next() {
    const size_t start = pos_;
    const char c = input_[pos_];
    Token t;
    t.pos = start;
    switch (c) {
      case ',':
        ++pos_;
        t.kind = TokenKind::kComma;
        return t;
      case '(':
        ++pos_;
        t.kind = TokenKind::kLParen;
        return t;
      case ')':
        ++pos_;
        t.kind = TokenKind::kRParen;
        return t;
      case '*':
        ++pos_;
        t.kind = TokenKind::kStar;
        return t;
      case ';':
        ++pos_;
        t.kind = TokenKind::kSemicolon;
        return t;
      case '=':
        ++pos_;
        t.kind = TokenKind::kEquals;
        return t;
      case '>':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '=') {
          ++pos_;
          t.kind = TokenKind::kGreaterEquals;
        } else {
          t.kind = TokenKind::kGreater;
        }
        return t;
      case '<':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '=') {
          ++pos_;
          t.kind = TokenKind::kLessEquals;
        } else if (pos_ < input_.size() && input_[pos_] == '>') {
          ++pos_;
          t.kind = TokenKind::kNotEquals;
        } else {
          t.kind = TokenKind::kLess;
        }
        return t;
      case '!':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          t.kind = TokenKind::kNotEquals;
          return t;
        }
        return ErrorAt(start, "unexpected '!'");
      case '\'':
        return LexString();
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      return LexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent();
    }
    return ErrorAt(start, StrFormat("unexpected character '%c'", c));
  }

  Result<Token> LexString() {
    Token t;
    t.pos = pos_;
    t.kind = TokenKind::kString;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          value += '\'';  // '' escape
          pos_ += 2;
          continue;
        }
        ++pos_;  // closing quote
        t.text = std::move(value);
        return t;
      }
      value += c;
      ++pos_;
    }
    return ErrorAt(t.pos, "unterminated string literal");
  }

  Result<Token> LexNumber() {
    Token t;
    t.pos = pos_;
    t.kind = TokenKind::kNumber;
    const size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    bool saw_dot = false, saw_exp = false;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !saw_dot && !saw_exp) {
        saw_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !saw_exp) {
        saw_exp = true;
        ++pos_;
        if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    const std::string spelled = input_.substr(start, pos_ - start);
    double v = 0.0;
    if (!ParseDouble(spelled, &v)) {
      return ErrorAt(start, "malformed number '" + spelled + "'");
    }
    t.number = v;
    t.is_integer = !saw_dot && !saw_exp;
    return t;
  }

  Result<Token> LexIdent() {
    Token t;
    t.pos = pos_;
    t.kind = TokenKind::kIdent;
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    t.text = input_.substr(start, pos_ - start);
    return t;
  }

  const std::string& input_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses one statement starting at the cursor; leaves the cursor after
  /// the statement's optional ';'.
  Result<ParsedAggQuery> ParseStatement() {
    ParsedAggQuery out;
    FEAT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    FEAT_RETURN_NOT_OK(ParseSelectList(&out));
    FEAT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    FEAT_ASSIGN_OR_RETURN(out.relation, ExpectIdent("relation name"));
    if (PeekKeyword("WHERE")) {
      Advance();
      FEAT_RETURN_NOT_OK(ParseWhere(&out.query));
    }
    FEAT_RETURN_NOT_OK(ExpectKeyword("GROUP"));
    FEAT_RETURN_NOT_OK(ExpectKeyword("BY"));
    FEAT_RETURN_NOT_OK(ParseGroupBy(&out));
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    return out;
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// Skips stray ';' tokens between statements.
  void SkipSemicolons() {
    while (Peek().kind == TokenKind::kSemicolon) Advance();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(cursor_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(cursor_++, tokens_.size() - 1)]; }

  static bool KeywordMatches(const Token& t, const char* kw) {
    return t.kind == TokenKind::kIdent && StrLower(t.text) == StrLower(kw);
  }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    return KeywordMatches(Peek(ahead), kw);
  }

  Status ErrorAt(const Token& t, const std::string& msg) const {
    const std::string got =
        t.kind == TokenKind::kEnd ? "end of input" : "'" + Spelling(t) + "'";
    return Status::InvalidArgument(StrFormat("SQL parse error at offset %zu: %s, got %s",
                                             t.pos, msg.c_str(), got.c_str()));
  }

  static std::string Spelling(const Token& t) {
    switch (t.kind) {
      case TokenKind::kIdent:
      case TokenKind::kString:
        return t.text;
      case TokenKind::kNumber:
        return StrFormat("%g", t.number);
      case TokenKind::kComma:
        return ",";
      case TokenKind::kLParen:
        return "(";
      case TokenKind::kRParen:
        return ")";
      case TokenKind::kStar:
        return "*";
      case TokenKind::kEquals:
        return "=";
      case TokenKind::kGreaterEquals:
        return ">=";
      case TokenKind::kLessEquals:
        return "<=";
      case TokenKind::kGreater:
        return ">";
      case TokenKind::kLess:
        return "<";
      case TokenKind::kNotEquals:
        return "<>";
      case TokenKind::kSemicolon:
        return ";";
      case TokenKind::kEnd:
        return "";
    }
    return "";
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return ErrorAt(Peek(), StrFormat("expected %s", kw));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorAt(Peek(), StrFormat("expected %s", what));
    }
    return Advance().text;
  }

  /// select_list := item (',' item)*; item := ident | AGG '(' ident ')'
  /// [AS ident]. Exactly one aggregate item is required.
  Status ParseSelectList(ParsedAggQuery* out) {
    bool saw_agg = false;
    std::vector<std::string> bare;
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return ErrorAt(Peek(), "expected column or aggregate in SELECT list");
      }
      if (Peek(1).kind == TokenKind::kLParen) {
        const Token& name = Peek();
        if (saw_agg) {
          return ErrorAt(name,
                         "the Def. 2 query class has exactly one aggregate item");
        }
        auto fn = ParseAggFunction(name.text);
        if (!fn.ok()) {
          return ErrorAt(name, "unknown aggregation function '" + name.text + "'");
        }
        out->query.agg = fn.value();
        Advance();  // name
        Advance();  // (
        if (Peek().kind == TokenKind::kStar) {
          // COUNT(*): attribute-less row counting (AggQuery::Validate
          // rejects the '*' form for every other aggregate).
          if (out->query.agg != AggFunction::kCount) {
            return ErrorAt(Peek(),
                           "'*' is only valid in COUNT(*); " + name.text +
                               " needs an attribute");
          }
          out->query.agg_attr.clear();
          Advance();
        } else {
          FEAT_ASSIGN_OR_RETURN(out->query.agg_attr,
                                ExpectIdent("aggregation attribute"));
        }
        if (Peek().kind != TokenKind::kRParen) {
          return ErrorAt(Peek(), "expected ')'");
        }
        Advance();
        if (PeekKeyword("AS")) {
          Advance();
          FEAT_ASSIGN_OR_RETURN(out->feature_alias, ExpectIdent("feature alias"));
        }
        saw_agg = true;
      } else {
        bare.push_back(Advance().text);
      }
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    if (!saw_agg) {
      return ErrorAt(Peek(), "SELECT list lacks an aggregate item agg(attr)");
    }
    select_keys_ = std::move(bare);
    return Status::OK();
  }

  /// where := conjunct (AND conjunct)*
  Status ParseWhere(AggQuery* q) {
    while (true) {
      FEAT_RETURN_NOT_OK(ParseConjunct(q));
      if (!PeekKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<double> ExpectNumber(const char* what) {
    if (Peek().kind != TokenKind::kNumber) {
      return ErrorAt(Peek(), StrFormat("expected %s", what));
    }
    return Advance().number;
  }

  /// conjunct := TRUE | ident BETWEEN num AND num | ident ('='|'>='|'<=') lit
  Status ParseConjunct(AggQuery* q) {
    if (PeekKeyword("TRUE")) {
      Advance();  // no-op conjunct; contributes no predicate
      return Status::OK();
    }
    FEAT_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("predicate attribute"));
    if (PeekKeyword("BETWEEN")) {
      Advance();
      FEAT_ASSIGN_OR_RETURN(double lo, ExpectNumber("BETWEEN lower bound"));
      FEAT_RETURN_NOT_OK(ExpectKeyword("AND"));
      FEAT_ASSIGN_OR_RETURN(double hi, ExpectNumber("BETWEEN upper bound"));
      if (lo > hi) {
        return Status::InvalidArgument(
            StrFormat("BETWEEN bounds inverted on %s: %g > %g", attr.c_str(), lo, hi));
      }
      q->predicates.push_back(Predicate::Range(attr, lo, hi));
      return Status::OK();
    }
    const Token& op = Peek();
    switch (op.kind) {
      case TokenKind::kEquals: {
        Advance();
        const Token& lit = Peek();
        Value v;
        if (lit.kind == TokenKind::kString) {
          v = Value::Str(lit.text);
        } else if (lit.kind == TokenKind::kNumber) {
          v = lit.is_integer ? Value::Int(static_cast<int64_t>(std::llround(lit.number)))
                             : Value::Double(lit.number);
        } else if (KeywordMatches(lit, "NULL")) {
          return ErrorAt(lit,
                         "NULL comparisons are outside the Def. 2 query class");
        } else {
          return ErrorAt(lit, "expected literal after '='");
        }
        Advance();
        q->predicates.push_back(Predicate::Equals(attr, std::move(v)));
        return Status::OK();
      }
      case TokenKind::kGreaterEquals: {
        Advance();
        FEAT_ASSIGN_OR_RETURN(double lo, ExpectNumber("range lower bound"));
        q->predicates.push_back(Predicate::Range(attr, lo, std::nullopt));
        return Status::OK();
      }
      case TokenKind::kLessEquals: {
        Advance();
        FEAT_ASSIGN_OR_RETURN(double hi, ExpectNumber("range upper bound"));
        q->predicates.push_back(Predicate::Range(attr, std::nullopt, hi));
        return Status::OK();
      }
      case TokenKind::kGreater:
      case TokenKind::kLess:
        return ErrorAt(op,
                       "strict comparisons are outside the Def. 2 query class "
                       "(ranges are inclusive: use >=, <= or BETWEEN)");
      case TokenKind::kNotEquals:
        return ErrorAt(op, "'!=' is outside the Def. 2 query class");
      default:
        return ErrorAt(op, "expected a predicate operator");
    }
  }

  Status ParseGroupBy(ParsedAggQuery* out) {
    std::vector<std::string> keys;
    while (true) {
      FEAT_ASSIGN_OR_RETURN(std::string k, ExpectIdent("GROUP BY key"));
      keys.push_back(std::move(k));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    // SQL validity: non-aggregated SELECT columns and GROUP BY keys must
    // agree (order-insensitively; GROUP BY order is canonical).
    for (const std::string& s : select_keys_) {
      bool found = false;
      for (const std::string& k : keys) found |= (k == s);
      if (!found) {
        return Status::InvalidArgument("SELECT column '" + s +
                                       "' is missing from GROUP BY");
      }
    }
    for (const std::string& k : keys) {
      bool found = false;
      for (const std::string& s : select_keys_) found |= (k == s);
      if (!found) {
        return Status::InvalidArgument("GROUP BY key '" + k +
                                       "' is missing from the SELECT list");
      }
    }
    out->query.group_keys = std::move(keys);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t cursor_ = 0;
  std::vector<std::string> select_keys_;
};

}  // namespace

Result<ParsedAggQuery> ParseAggQuerySql(const std::string& sql) {
  FEAT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Run());
  Parser parser(std::move(tokens));
  FEAT_ASSIGN_OR_RETURN(ParsedAggQuery out, parser.ParseStatement());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument(
        "trailing input after the query (use ParseAggQueryScript for scripts)");
  }
  return out;
}

Result<ParsedAggQuery> ParseAggQuerySql(const std::string& sql,
                                        const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(ParsedAggQuery out, ParseAggQuerySql(sql));
  FEAT_RETURN_NOT_OK(out.query.Validate(relevant));
  // Equality literals must match the column representation: string columns
  // compare dictionary strings, everything else compares numerically.
  for (const Predicate& p : out.query.predicates) {
    if (p.kind != Predicate::Kind::kEquals) continue;
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(p.attr));
    const bool want_string = col->type() == DataType::kString;
    const bool is_string = p.equals_value.tag() == Value::Tag::kString;
    if (want_string != is_string) {
      return Status::InvalidArgument(StrFormat(
          "equality literal type mismatch on %s: column is %s", p.attr.c_str(),
          DataTypeToString(col->type())));
    }
  }
  return out;
}

Result<std::vector<ParsedAggQuery>> ParseAggQueryScript(const std::string& sql) {
  FEAT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Run());
  Parser parser(std::move(tokens));
  std::vector<ParsedAggQuery> out;
  parser.SkipSemicolons();
  while (!parser.AtEnd()) {
    FEAT_ASSIGN_OR_RETURN(ParsedAggQuery q, parser.ParseStatement());
    out.push_back(std::move(q));
    parser.SkipSemicolons();
  }
  return out;
}

}  // namespace featlib

#include "query/kernel_dispatch.h"

namespace featlib {

namespace {

/// The scalar mask build: the exact per-row loop the planner's prepare
/// phase ran before dispatch existed, kept as the oracle the vectorized
/// evaluator is swept against.
void ScalarBuildFilterMask(const CompiledFilter& filter, Bitset* out) {
  const size_t n = filter.num_rows();
  for (size_t row = 0; row < n; ++row) {
    if (filter.Matches(row)) out->Set(row);
  }
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalarOnly:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = [] {
#if defined(FEATLIB_DISABLE_SIMD)
    return SimdLevel::kScalarOnly;
#elif defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                          : SimdLevel::kScalarOnly;
#elif defined(__aarch64__)
    // NEON is architecturally baseline on AArch64.
    return SimdLevel::kNeon;
#else
    return SimdLevel::kScalarOnly;
#endif
  }();
  return level;
}

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops = {
      /*backend=*/KernelBackend::kScalar,
      /*level=*/SimdLevel::kScalarOnly,
      /*aggregate_streaming=*/&AggregateStreaming,
      /*aggregate_from_materialized=*/&AggregateFromMaterialized,
      /*build_materialized=*/&BuildMaterializedValues,
      /*compute_feature=*/&ComputeFeatureKernel,
      /*build_filter_mask=*/&ScalarBuildFilterMask,
  };
  return ops;
}

const KernelOps& KernelOpsFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return ScalarKernelOps();
    case KernelBackend::kSimd:
      return SimdKernelOps();
    case KernelBackend::kAuto:
      break;
  }
  return DetectedSimdLevel() == SimdLevel::kScalarOnly ? ScalarKernelOps()
                                                       : SimdKernelOps();
}

const KernelOps& ResolveKernelOps(KernelBackend override_backend) {
  if (override_backend != KernelBackend::kAuto) {
    return KernelOpsFor(override_backend);
  }
  return KernelOpsFor(FeatAugConfig::Global().ResolvedKernelBackend());
}

}  // namespace featlib

#include "query/executor.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/str_util.h"
#include "query/batch_executor.h"
#include "query/group_index.h"

namespace featlib {

namespace {

// Composite group keys are encoded as raw byte strings: 8 bytes per
// component. Int-backed columns contribute the value, string columns the
// dictionary code (canonicalized to the relevant table's dictionary), double
// columns the bit pattern.
void AppendComponent(int64_t v, std::string* out) {
  char buf[sizeof(int64_t)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

// Encodes row `row` of the given key columns; returns false when any key
// cell is NULL (such rows never participate in the join).
bool EncodeKeyFromColumns(const std::vector<const Column*>& cols, size_t row,
                          std::string* out) {
  out->clear();
  for (const Column* col : cols) {
    if (col->IsNull(row)) return false;
    switch (col->type()) {
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool:
        AppendComponent(col->IntAt(row), out);
        break;
      case DataType::kString:
        AppendComponent(col->CodeAt(row), out);
        break;
      case DataType::kDouble: {
        int64_t bits;
        // Signed zeros compare equal but differ bitwise; normalize so the
        // byte-string keys agree (mirrors GroupIndex).
        const double v = NormalizeSignedZero(col->DoubleAt(row));
        std::memcpy(&bits, &v, sizeof(bits));
        AppendComponent(bits, out);
        break;
      }
    }
  }
  return true;
}

// Per-key-column translator from the training table's representation to the
// relevant table's canonical one (string codes differ across tables).
struct KeyColumnPair {
  const Column* d_col;
  const Column* r_col;
  // For string columns: d_code -> r_code (-1 when absent from R).
  std::vector<int32_t> code_map;
};

bool EncodeKeyFromTraining(const std::vector<KeyColumnPair>& pairs, size_t row,
                           std::string* out) {
  out->clear();
  for (const KeyColumnPair& p : pairs) {
    if (p.d_col->IsNull(row)) return false;
    switch (p.r_col->type()) {
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool:
        AppendComponent(p.d_col->IntAt(row), out);
        break;
      case DataType::kString: {
        const int32_t d_code = p.d_col->CodeAt(row);
        const int32_t r_code = p.code_map[static_cast<size_t>(d_code)];
        if (r_code < 0) return false;  // key value never occurs in R
        AppendComponent(r_code, out);
        break;
      }
      case DataType::kDouble: {
        int64_t bits;
        const double v = NormalizeSignedZero(p.d_col->DoubleAt(row));
        std::memcpy(&bits, &v, sizeof(bits));
        AppendComponent(bits, out);
        break;
      }
    }
  }
  return true;
}

struct GroupedRows {
  // key bytes -> rows of R in that group
  std::unordered_map<std::string, std::vector<uint32_t>> groups;
  // first-seen order for deterministic output
  std::vector<const std::string*> order;
};

Result<GroupedRows> GroupFilteredRows(const AggQuery& q, const Table& relevant) {
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  FEAT_ASSIGN_OR_RETURN(CompiledFilter filter,
                        CompiledFilter::Compile(q.predicates, relevant));
  std::vector<const Column*> key_cols;
  for (const auto& k : q.group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    key_cols.push_back(col);
  }
  GroupedRows out;
  // Sized for the common one-to-many shape (a handful of rows per group);
  // rehashing the group map mid-scan dominated small-table grouping.
  out.groups.reserve(relevant.num_rows() / 4 + 1);
  out.order.reserve(relevant.num_rows() / 4 + 1);
  std::string key;
  for (size_t row = 0; row < relevant.num_rows(); ++row) {
    if (!filter.Matches(row)) continue;
    if (!EncodeKeyFromColumns(key_cols, row, &key)) continue;
    auto [it, inserted] = out.groups.try_emplace(key);
    if (inserted) {
      out.order.push_back(&it->first);
      it->second.reserve(8);
    }
    it->second.push_back(static_cast<uint32_t>(row));
  }
  return out;
}

}  // namespace

Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant) {
  BatchExecutor executor;
  return executor.ExecuteAggQuery(q, relevant);
}

Result<std::vector<double>> ComputeFeatureColumn(const AggQuery& q,
                                                 const Table& training,
                                                 const Table& relevant) {
  BatchExecutor executor;
  return executor.ComputeFeatureColumn(q, training, relevant);
}

Result<Table> ExecuteAggQueryLegacy(const AggQuery& q, const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(GroupedRows grouped, GroupFilteredRows(q, relevant));
  // COUNT(*) (empty agg attribute, Validate restricts it to kCount) counts
  // the group's selected rows; no aggregation column is read.
  const bool count_star = q.agg_attr.empty();
  const Column* agg_col = nullptr;
  if (!count_star) {
    FEAT_ASSIGN_OR_RETURN(agg_col, relevant.GetColumn(q.agg_attr));
  }

  // Representative row per group, in first-seen order.
  std::vector<uint32_t> representatives;
  representatives.reserve(grouped.order.size());
  Column feature(DataType::kDouble);
  feature.Reserve(grouped.order.size());
  for (const std::string* key : grouped.order) {
    const auto& rows = grouped.groups.at(*key);
    representatives.push_back(rows.front());
    const double v = count_star ? static_cast<double>(rows.size())
                                : ComputeAggregate(q.agg, *agg_col, rows);
    if (std::isnan(v)) {
      feature.AppendNull();
    } else {
      feature.AppendDouble(v);
    }
  }

  Table out;
  for (const auto& k : q.group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    FEAT_RETURN_NOT_OK(out.AddColumn(k, col->Take(representatives)));
  }
  FEAT_RETURN_NOT_OK(out.AddColumn("feature", std::move(feature)));
  return out;
}

Result<std::vector<double>> ComputeFeatureColumnLegacy(const AggQuery& q,
                                                       const Table& training,
                                                       const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(GroupedRows grouped, GroupFilteredRows(q, relevant));
  const bool count_star = q.agg_attr.empty();
  const Column* agg_col = nullptr;
  if (!count_star) {
    FEAT_ASSIGN_OR_RETURN(agg_col, relevant.GetColumn(q.agg_attr));
  }

  std::unordered_map<std::string, double> feature_by_key;
  feature_by_key.reserve(grouped.groups.size());
  for (const auto& [key, rows] : grouped.groups) {
    feature_by_key.emplace(key, count_star
                                    ? static_cast<double>(rows.size())
                                    : ComputeAggregate(q.agg, *agg_col, rows));
  }

  std::vector<KeyColumnPair> pairs;
  for (const auto& k : q.group_keys) {
    auto d_col = training.GetColumn(k);
    if (!d_col.ok()) {
      return Status::InvalidArgument("group key missing from training table: " + k);
    }
    FEAT_ASSIGN_OR_RETURN(const Column* r_col, relevant.GetColumn(k));
    KeyColumnPair p{d_col.value(), r_col, {}};
    if (r_col->type() == DataType::kString) {
      if (p.d_col->type() != DataType::kString) {
        return Status::InvalidArgument("join key type mismatch on " + k);
      }
      const auto& d_dict = p.d_col->dictionary();
      p.code_map.resize(d_dict.size());
      for (size_t i = 0; i < d_dict.size(); ++i) {
        p.code_map[i] = r_col->FindCode(d_dict[i]);
      }
    }
    pairs.push_back(std::move(p));
  }

  std::vector<double> out(training.num_rows(), std::nan(""));
  std::string key;
  for (size_t row = 0; row < training.num_rows(); ++row) {
    if (!EncodeKeyFromTraining(pairs, row, &key)) continue;
    auto it = feature_by_key.find(key);
    if (it != feature_by_key.end()) out[row] = it->second;
  }
  return out;
}

Result<Table> AugmentTable(const Table& training, const Table& relevant,
                           const AggQuery& q, const std::string& feature_name) {
  FEAT_ASSIGN_OR_RETURN(std::vector<double> values,
                        ComputeFeatureColumn(q, training, relevant));
  Table out = training;
  FEAT_RETURN_NOT_OK(
      out.AddColumn(feature_name, Column::FromDoubles(values)));
  return out;
}

}  // namespace featlib

#include "query/executor.h"

#include "query/query_planner.h"

namespace featlib {

Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant) {
  QueryPlanner executor;
  return executor.ExecuteAggQuery(q, relevant);
}

Result<std::vector<double>> ComputeFeatureColumn(const AggQuery& q,
                                                 const Table& training,
                                                 const Table& relevant) {
  QueryPlanner executor;
  return executor.ComputeFeatureColumn(q, training, relevant);
}

Result<Table> AugmentTable(const Table& training, const Table& relevant,
                           const AggQuery& q, const std::string& feature_name) {
  FEAT_ASSIGN_OR_RETURN(std::vector<double> values,
                        ComputeFeatureColumn(q, training, relevant));
  Table out = training;
  FEAT_RETURN_NOT_OK(
      out.AddColumn(feature_name, Column::FromDoubles(values)));
  return out;
}

}  // namespace featlib

#pragma once

/// \file executor.h
/// \brief Execution of predicate-aware aggregation queries and the LEFT JOIN
/// augmentation of Def. 3.
///
/// These are convenience wrappers over a transient QueryPlanner (see
/// query/query_planner.h for the planner / ArtifactStore / kernel layering).
/// Callers evaluating many candidates over the same tables should hold a
/// QueryPlanner to reuse its group index, predicate masks, and bucket
/// materializations across calls.
///
/// The pre-planner per-candidate reference implementations
/// (ExecuteAggQueryLegacy / ComputeFeatureColumnLegacy) are retired: their
/// validated outputs are frozen as recorded goldens under tests/golden/
/// (see tests/golden_util.h and scripts/regen_goldens.sh), which now pin
/// the planner path byte for byte.

#include <string>
#include <vector>

#include "common/status.h"
#include "query/agg_query.h"
#include "table/table.h"

namespace featlib {

/// \brief Executes `q` against the relevant table.
///
/// Result schema: the group-key columns (taken from R, first-seen group
/// order) followed by a kDouble column named "feature". Rows whose group key
/// contains NULL are dropped (they can never join back to D).
Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant);

/// \brief Computes the augmented feature aligned to the training table.
///
/// Semantically `D LEFT JOIN q(R) ON D.k = q(R).k` projected to the feature
/// column: returns one double per row of `D`, NaN where the entity has no
/// qualifying rows in `R` (or a NULL join key). This is the hot path of the
/// whole framework — it avoids materializing the join.
Result<std::vector<double>> ComputeFeatureColumn(const AggQuery& q,
                                                 const Table& training,
                                                 const Table& relevant);

/// \brief Materializes the augmented training table D^q of Def. 3.
///
/// Appends the computed feature as a nullable kDouble column named
/// `feature_name` (error if the name already exists).
Result<Table> AugmentTable(const Table& training, const Table& relevant,
                           const AggQuery& q, const std::string& feature_name);

}  // namespace featlib

#pragma once

/// \file aggregate.h
/// \brief The 15 aggregation functions used by FeatAug (Table II of the
/// paper): SUM, MIN, MAX, COUNT, AVG, COUNT DISTINCT, VAR, VAR_SAMPLE, STD,
/// STD_SAMPLE, ENTROPY, KURTOSIS, MODE, MAD, MEDIAN.

#include <string>
#include <vector>

#include "common/status.h"
#include "table/column.h"

namespace featlib {

enum class AggFunction {
  kSum = 0,
  kMin,
  kMax,
  kCount,
  kAvg,
  kCountDistinct,
  kVar,        // population variance
  kVarSample,  // sample variance (n-1 denominator)
  kStd,        // population standard deviation
  kStdSample,
  kEntropy,    // Shannon entropy (nats) of the value distribution
  kKurtosis,   // excess kurtosis (Fisher definition)
  kMode,       // most frequent value; ties break toward the smallest
  kMad,        // median absolute deviation around the median
  kMedian,
};

inline constexpr int kNumAggFunctions = 15;

/// Canonical SQL-ish name, e.g. "AVG" or "COUNT_DISTINCT".
const char* AggFunctionName(AggFunction fn);

/// Parses a name produced by AggFunctionName (case-insensitive).
Result<AggFunction> ParseAggFunction(const std::string& name);

/// All 15 functions in enum order.
std::vector<AggFunction> AllAggFunctions();

/// True when the function is order-statistic/frequency based and therefore
/// well-defined on categorical (string) aggregation attributes as well.
bool SupportsCategorical(AggFunction fn);

/// \brief Computes `fn` over the numeric view of `col` restricted to `rows`.
///
/// Null cells are skipped (SQL semantics); COUNT counts non-null cells.
/// Returns NaN when the aggregate is undefined for the group (empty group;
/// sample variance of a single value; kurtosis of a constant group).
double ComputeAggregate(AggFunction fn, const Column& col,
                        const std::vector<uint32_t>& rows);

/// Convenience overload over a dense vector of values (no nulls).
double ComputeAggregate(AggFunction fn, const std::vector<double>& values);

/// Dense core over a contiguous slice (no nulls). The batch executor
/// aggregates group slices of one flat array through this without copying.
double ComputeAggregate(AggFunction fn, const double* values, size_t n);

}  // namespace featlib

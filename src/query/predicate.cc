#include "query/predicate.h"

#include <cmath>

#include "common/str_util.h"

namespace featlib {

Predicate Predicate::Equals(std::string attr, Value value) {
  Predicate p;
  p.attr = std::move(attr);
  p.kind = Kind::kEquals;
  p.equals_value = std::move(value);
  return p;
}

Predicate Predicate::Range(std::string attr, std::optional<double> lo,
                           std::optional<double> hi) {
  Predicate p;
  p.attr = std::move(attr);
  p.kind = Kind::kRange;
  if (lo.has_value()) {
    p.has_lo = true;
    p.lo = *lo;
  }
  if (hi.has_value()) {
    p.has_hi = true;
    p.hi = *hi;
  }
  return p;
}

std::string Predicate::ToSql(DataType attr_type) const {
  if (kind == Kind::kEquals) {
    return attr + " = " + equals_value.ToSqlLiteral();
  }
  auto render = [&](double v) {
    if (attr_type == DataType::kInt64 || attr_type == DataType::kDatetime) {
      return StrFormat("%lld", static_cast<long long>(std::llround(v)));
    }
    return StrFormat("%g", v);
  };
  if (has_lo && has_hi) {
    return attr + " BETWEEN " + render(lo) + " AND " + render(hi);
  }
  if (has_lo) return attr + " >= " + render(lo);
  if (has_hi) return attr + " <= " + render(hi);
  return "TRUE";
}

std::string Predicate::CacheKey() const {
  std::string out = attr;
  if (kind == Kind::kEquals) {
    out += "=" + equals_value.ToSqlLiteral();
  } else {
    out += StrFormat("[%s,%s]", has_lo ? StrFormat("%.9g", lo).c_str() : "-inf",
                     has_hi ? StrFormat("%.9g", hi).c_str() : "+inf");
  }
  return out;
}

Result<CompiledFilter> CompiledFilter::Compile(
    const std::vector<Predicate>& predicates, const Table& table) {
  CompiledFilter out;
  out.num_rows_ = table.num_rows();
  for (const Predicate& p : predicates) {
    if (p.IsTrivial()) continue;
    FEAT_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(p.attr));
    BoundPredicate b;
    b.column = col;
    b.kind = p.kind;
    if (p.kind == Predicate::Kind::kEquals) {
      if (col->type() == DataType::kString) {
        b.is_string = true;
        if (p.equals_value.tag() != Value::Tag::kString) {
          return Status::InvalidArgument(
              "equality predicate on string column needs a string operand: " +
              p.attr);
        }
        b.code = col->FindCode(p.equals_value.string_value());
      } else {
        const double v = p.equals_value.AsDouble();
        if (std::isnan(v)) {
          return Status::InvalidArgument(
              "equality predicate operand is not numeric for " + p.attr);
        }
        b.equals_numeric = v;
      }
    } else {
      if (col->type() == DataType::kString) {
        return Status::InvalidArgument("range predicate on string column " +
                                       p.attr);
      }
      b.has_lo = p.has_lo;
      b.has_hi = p.has_hi;
      b.lo = p.lo;
      b.hi = p.hi;
      if (b.has_lo && b.has_hi && b.lo > b.hi) {
        return Status::InvalidArgument("range predicate with lo > hi on " +
                                       p.attr);
      }
    }
    out.bound_.push_back(b);
  }
  return out;
}

bool CompiledFilter::Matches(size_t row) const {
  for (const BoundPredicate& b : bound_) {
    if (b.column->IsNull(row)) return false;
    if (b.kind == Predicate::Kind::kEquals) {
      if (b.is_string) {
        if (b.code < 0 || b.column->CodeAt(row) != b.code) return false;
      } else {
        if (b.column->AsDouble(row) != b.equals_numeric) return false;
      }
    } else {
      const double v = b.column->AsDouble(row);
      if (b.has_lo && v < b.lo) return false;
      if (b.has_hi && v > b.hi) return false;
    }
  }
  return true;
}

std::vector<uint32_t> CompiledFilter::Apply() const {
  std::vector<uint32_t> out;
  out.reserve(num_rows_ / 4);
  for (size_t i = 0; i < num_rows_; ++i) {
    if (Matches(i)) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

}  // namespace featlib

#include "query/aggregate.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>

#include "common/str_util.h"

namespace featlib {

namespace {

const char* const kAggNames[kNumAggFunctions] = {
    "SUM",  "MIN",        "MAX",      "COUNT", "AVG",
    "COUNT_DISTINCT",     "VAR",      "VAR_SAMPLE",
    "STD",  "STD_SAMPLE", "ENTROPY",  "KURTOSIS",
    "MODE", "MAD",        "MEDIAN"};

double Nan() { return std::nan(""); }

double Median(std::vector<double>* values) {
  const size_t n = values->size();
  if (n == 0) return Nan();
  const size_t mid = n / 2;
  std::nth_element(values->begin(), values->begin() + static_cast<ptrdiff_t>(mid),
                   values->end());
  const double upper = (*values)[mid];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(values->begin(), values->begin() + static_cast<ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace

const char* AggFunctionName(AggFunction fn) {
  const int i = static_cast<int>(fn);
  FEAT_CHECK(i >= 0 && i < kNumAggFunctions, "bad AggFunction");
  return kAggNames[i];
}

Result<AggFunction> ParseAggFunction(const std::string& name) {
  const std::string upper = [&] {
    std::string s = name;
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
  }();
  for (int i = 0; i < kNumAggFunctions; ++i) {
    if (upper == kAggNames[i]) return static_cast<AggFunction>(i);
  }
  return Status::InvalidArgument("unknown aggregation function: " + name);
}

std::vector<AggFunction> AllAggFunctions() {
  std::vector<AggFunction> out;
  out.reserve(kNumAggFunctions);
  for (int i = 0; i < kNumAggFunctions; ++i) out.push_back(static_cast<AggFunction>(i));
  return out;
}

bool SupportsCategorical(AggFunction fn) {
  switch (fn) {
    case AggFunction::kCount:
    case AggFunction::kCountDistinct:
    case AggFunction::kEntropy:
    case AggFunction::kMode:
      return true;
    default:
      return false;
  }
}

double ComputeAggregate(AggFunction fn, const std::vector<double>& values) {
  return ComputeAggregate(fn, values.data(), values.size());
}

double ComputeAggregate(AggFunction fn, const double* values, size_t n) {
  switch (fn) {
    case AggFunction::kCount:
      return static_cast<double>(n);
    case AggFunction::kSum: {
      if (n == 0) return Nan();
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += values[i];
      return s;
    }
    case AggFunction::kMin:
      return n == 0 ? Nan() : *std::min_element(values, values + n);
    case AggFunction::kMax:
      return n == 0 ? Nan() : *std::max_element(values, values + n);
    case AggFunction::kAvg: {
      if (n == 0) return Nan();
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += values[i];
      return s / static_cast<double>(n);
    }
    case AggFunction::kCountDistinct: {
      // NaN never compares equal to itself (and is unordered, so it cannot
      // go through std::sort); fold all NaNs into one distinct value.
      std::vector<double> copy;
      copy.reserve(n);
      bool has_nan = false;
      for (size_t i = 0; i < n; ++i) {
        if (std::isnan(values[i])) {
          has_nan = true;
        } else {
          copy.push_back(values[i]);
        }
      }
      std::sort(copy.begin(), copy.end());
      size_t distinct = has_nan ? 1 : 0;
      for (size_t i = 0; i < copy.size(); ++i) {
        if (i == 0 || copy[i] != copy[i - 1]) ++distinct;
      }
      return static_cast<double>(distinct);
    }
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample: {
      const bool sample =
          fn == AggFunction::kVarSample || fn == AggFunction::kStdSample;
      const bool std_dev = fn == AggFunction::kStd || fn == AggFunction::kStdSample;
      if (n == 0 || (sample && n < 2)) return Nan();
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += values[i];
      mean /= static_cast<double>(n);
      double ss = 0.0;
      for (size_t i = 0; i < n; ++i) ss += (values[i] - mean) * (values[i] - mean);
      const double denom = sample ? static_cast<double>(n - 1) : static_cast<double>(n);
      const double var = ss / denom;
      return std_dev ? std::sqrt(var) : var;
    }
    case AggFunction::kEntropy: {
      if (n == 0) return Nan();
      // Sorted run-length counting: no per-group hash map, and the terms
      // accumulate in ascending-value order, which keeps the result
      // deterministic regardless of input order.
      std::vector<double> copy(values, values + n);
      std::sort(copy.begin(), copy.end());
      double h = 0.0;
      size_t run = 1;
      for (size_t i = 1; i <= n; ++i) {
        if (i < n && copy[i] == copy[i - 1]) {
          ++run;
          continue;
        }
        const double p = static_cast<double>(run) / static_cast<double>(n);
        h -= p * std::log(p);
        run = 1;
      }
      return h;
    }
    case AggFunction::kKurtosis: {
      if (n < 2) return Nan();
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += values[i];
      mean /= static_cast<double>(n);
      double m2 = 0.0;
      double m4 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = values[i] - mean;
        m2 += d * d;
        m4 += d * d * d * d;
      }
      m2 /= static_cast<double>(n);
      m4 /= static_cast<double>(n);
      if (m2 <= 0.0) return Nan();
      return m4 / (m2 * m2) - 3.0;  // excess kurtosis
    }
    case AggFunction::kMode: {
      if (n == 0) return Nan();
      // Ascending run scan; requiring a strictly greater count breaks ties
      // toward the smallest value, as the old std::map pass did.
      std::vector<double> copy(values, values + n);
      std::sort(copy.begin(), copy.end());
      double best = copy[0];
      size_t best_count = 0;
      size_t run = 1;
      for (size_t i = 1; i <= n; ++i) {
        if (i < n && copy[i] == copy[i - 1]) {
          ++run;
          continue;
        }
        if (run > best_count) {
          best = copy[i - 1];
          best_count = run;
        }
        run = 1;
      }
      return best;
    }
    case AggFunction::kMad: {
      if (n == 0) return Nan();
      std::vector<double> copy(values, values + n);
      const double med = Median(&copy);
      std::vector<double> dev(n);
      for (size_t i = 0; i < n; ++i) dev[i] = std::fabs(values[i] - med);
      return Median(&dev);
    }
    case AggFunction::kMedian: {
      if (n == 0) return Nan();
      std::vector<double> copy(values, values + n);
      return Median(&copy);
    }
  }
  return Nan();
}

double ComputeAggregate(AggFunction fn, const Column& col,
                        const std::vector<uint32_t>& rows) {
  // COUNT over an index set never needs the values materialized.
  if (fn == AggFunction::kCount) {
    size_t c = 0;
    for (uint32_t r : rows) {
      if (!col.IsNull(r)) ++c;
    }
    return static_cast<double>(c);
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (uint32_t r : rows) {
    if (!col.IsNull(r)) values.push_back(col.AsDouble(r));
  }
  return ComputeAggregate(fn, values);
}

}  // namespace featlib

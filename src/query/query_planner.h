#pragma once

/// \file query_planner.h
/// \brief Batch query planner: compiles a candidate pool into a deduplicated
/// DAG of shared artifacts, prepares the artifacts in parallel through a
/// build-then-publish ArtifactStore, and fans the pure per-candidate kernels
/// out over a ThreadPool.
///
/// FeatAug's search evaluates thousands of candidate queries (predicate
/// combo x agg function x agg attribute) that share the same one-to-many
/// join. The planner is the top layer of the planner / store / kernel split
/// (see docs/ARCHITECTURE.md):
///
///  1. **Compile** — one sequential pass over the batch resolves every
///     candidate to the set of artifacts it needs (group index, training-row
///     map, predicate/conjunction bitsets, numeric value view, bucket
///     materialization), deduplicating requests across candidates and
///     looking up what the ArtifactStore already holds. The result is a
///     three-stage dependency DAG: conjunction masks depend on their
///     constituent predicate masks, training-row maps on their group index,
///     and materializations on group index + mask + view.
///
///     Per-candidate resolution is **memoized across batches**: the first
///     time a candidate content key (AggQuery::CacheKey) is seen, its
///     validation and artifact-key derivation (group key, predicate keys,
///     conjunction key, bucket key) run and the result is cached; a pool
///     that overlaps a previous pool — the HPO-loop pattern, where
///     successive search rounds re-plan nearly identical pools — skips
///     re-resolution for the overlap and goes straight to the
///     missing-artifact DAG. Memo entries are pure content (strings and
///     indices, no artifact pointers), so store eviction never invalidates
///     them; like every store shard they are bound to the planner's
///     (training, relevant) pair.
///
///  2. **Prepare (parallel)** — missing artifacts are built *off to the
///     side* on the ThreadPool, independent artifacts of a stage in
///     parallel, stages in topological order; after each stage the finished
///     values are published into the store sequentially on the calling
///     thread (ThreadPool::ParallelForStages). Publish order is request
///     order, so the store's contents — and every downstream byte — are
///     identical at every thread and chunk count.
///
///  3. **Fan-out (parallel)** — the per-candidate kernels (query/kernels.h)
///     are pure functions over published const artifacts writing pre-sized
///     output slots; they run on the pool with chunk-claimed scheduling.
///
/// An instance is bound by content to one (training, relevant) table pair:
/// its store keys off group-key names and predicate operands, so feeding it
/// a different table with the same schema would silently reuse stale
/// artifacts. Callers that augment multiple tables create one planner per
/// pair (cheap — the store fills lazily).
///
/// Thread-compatibility: an instance may be used from one thread at a time
/// (its internal pool parallelism is self-contained); concurrent calls on
/// the same instance require external synchronization.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "query/agg_query.h"
#include "query/artifact_store.h"
#include "query/kernels.h"
#include "query/morsel.h"
#include "table/table.h"

namespace featlib {

class GroupIndex;
class ThreadPool;
struct KernelOps;

/// \brief A frozen, batch-independent query plan for repeated serving.
///
/// Every candidate is resolved to store-owned const artifacts (group index,
/// selection mask, value view or bucket materialization) — everything that
/// depends only on the *relevant* table. The one batch-dependent artifact,
/// the training-row map, is deliberately left unbound: ExecuteServingPlan
/// builds it per incoming batch into call-local storage, so any number of
/// threads can execute the same ServingPlan concurrently without touching
/// the planner or its store.
///
/// Validity: the pointers live in the compiling QueryPlanner's store and in
/// the caller's query vector. They stay valid while (a) the planner and the
/// query vector outlive the plan and (b) no further Prepare/Evaluate call
/// runs on that planner (a later publish may evict byte-capped entries).
/// FittedAugmenter (core/augmenter.h) owns exactly this pairing.
struct ServingPlan {
  /// Per-candidate kernel inputs; `train_map` is null until execution.
  std::vector<PlannedCandidate> candidates;
  /// Distinct group indexes referenced by the candidates (first-use order).
  std::vector<const GroupIndex*> group_indexes;
  /// candidates[i] reads its training-row map from group_indexes[candidate_group[i]].
  std::vector<size_t> candidate_group;
  /// The relevant table the plan was compiled against (not owned). Bound at
  /// compile time: executing against any other table — even one with the
  /// same schema — would translate batch keys through the wrong dictionary.
  const Table* relevant = nullptr;
  /// Kernel-backend override captured from the compiling planner. kAuto
  /// defers to FEATLIB_KERNEL_BACKEND / FeatAugConfig at *execution* time,
  /// so a serving process can steer the backend without recompiling plans.
  KernelBackend kernel_backend = KernelBackend::kAuto;

  /// \name Morsel-streamed plans (see query/morsel.h).
  ///
  /// When the compiling planner resolved a non-zero morsel size, the
  /// per-group aggregate values were computed at compile time by the
  /// bounded-memory morsel pipeline and frozen here; executing the plan only
  /// maps each batch onto them (a per-group lookup — the same final step the
  /// kernels perform). `candidates` is then empty, `group_indexes` points
  /// into `owned_indexes` (key-map-only indexes, deliberately never
  /// published into the planner's store), and per_group_features[i] pairs
  /// with candidate_group[i] exactly as candidates[i] otherwise would.
  /// @{
  bool morsel_streamed = false;
  std::vector<std::vector<double>> per_group_features;
  std::vector<std::shared_ptr<const GroupIndex>> owned_indexes;
  /// @}
};

/// Executes a frozen serving plan against one batch: builds the batch's
/// training-row maps locally (one per distinct group index, no store
/// mutation), then runs the pure per-candidate kernels — on `pool` when
/// non-null, inline otherwise. Const over the compiling planner and its
/// store, so concurrent calls on the same plan are thread-safe and
/// byte-identical to serial execution at every thread count.
Result<std::vector<std::vector<double>>> ExecuteServingPlan(
    const ServingPlan& plan, const Table& batch, ThreadPool* pool = nullptr,
    const ExecContext* ctx = nullptr);

class QueryPlanner {
 public:
  QueryPlanner() = default;

  /// Pool used for both the parallel prepare and the fan-out phase. nullptr
  /// (the default) means serial evaluation. Not owned; must outlive the
  /// planner's use.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Kernel backend for every phase this planner dispatches — predicate
  /// masks, bucket materializations, streaming aggregation, the fan-out
  /// kernels. kAuto (the default) defers to FEATLIB_KERNEL_BACKEND /
  /// FeatAugConfig and then to CPU detection (see query/kernel_dispatch.h).
  /// Backends are byte-identical by contract; this is a performance knob
  /// and a test hook, never a semantics switch.
  void set_kernel_backend(KernelBackend backend) { kernel_backend_ = backend; }
  KernelBackend kernel_backend() const { return kernel_backend_; }

  /// Rows per morsel for out-of-core evaluation. 0 (the default) defers to
  /// FEATLIB_MORSEL_ROWS / FeatAugConfig::Global().morsel_rows; when the
  /// resolved value is non-zero, EvaluateMany / EvaluateManyIsolated /
  /// ComputeFeatureColumn / CompileServingPlan run the bounded-memory morsel
  /// pipeline (query/morsel.h) instead of whole-table artifact preparation.
  /// Purely a memory/performance knob: results are byte-identical to the
  /// in-RAM path at every morsel size and thread count.
  void set_morsel_rows(size_t rows) { morsel_rows_ = rows; }
  size_t morsel_rows() const { return morsel_rows_; }

  /// Build/combine overlap of the morsel pipeline (on by default). Identical
  /// bytes either way — the toggle only changes wall-clock overlap.
  void set_morsel_prefetch(bool on) { morsel_prefetch_ = on; }
  bool morsel_prefetch() const { return morsel_prefetch_; }

  /// Stats of the last morsel-mode evaluation on this planner (zeroed when
  /// the last evaluation took the in-RAM path).
  const MorselExecStats& last_morsel_stats() const { return morsel_stats_; }

  /// Bounded retry for transiently-failing artifact builds: a build whose
  /// failure is retryable (kInternal / kIOError — the transient classes; a
  /// kInvalidArgument query shape never retries) is re-attempted up to
  /// `max_attempts` total tries, sleeping RetryDelayMs between tries.
  /// Default is one attempt (no retry); retries taken are reported in
  /// PlanStats::build_retries.
  struct RetryPolicy {
    int max_attempts = 1;
    /// Base of the exponential schedule (attempt 0 waits ~backoff_ms). 0
    /// disables sleeping entirely (retries stay immediate).
    int backoff_ms = 0;
    /// The doubling saturates here: no single wait exceeds this, however
    /// many attempts the policy allows.
    int max_backoff_ms = 1000;
    /// Seed of the deterministic jitter. Concurrent builds that fail
    /// together desynchronize (each request's delay is drawn from its own
    /// token), yet every (seed, token, attempt) triple always yields the
    /// same delay — retry timing is reproducible like everything else.
    uint64_t jitter_seed = 0;
  };
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// The pure delay schedule behind the retry sleeps: the exponential base
  /// min(backoff_ms << attempt, max_backoff_ms) jittered deterministically
  /// into [base/2, base] by hashing (jitter_seed, token, attempt). `token`
  /// identifies the retrying request (the planner derives it from the
  /// artifact's cache key) so parallel failers spread out. Exposed for
  /// tests: the sequence is a pure function of its arguments.
  static int RetryDelayMs(const RetryPolicy& policy, int attempt,
                          uint64_t token);

  /// Feature column of `q` aligned to `training` (NaN where the entity has
  /// no qualifying rows), reusing the store's artifacts across calls.
  /// A non-null `ctx` is checked between pipeline phases (and at ThreadPool
  /// chunk boundaries) and charged with build-size estimates.
  Result<std::vector<double>> ComputeFeatureColumn(
      const AggQuery& q, const Table& training, const Table& relevant,
      const ExecContext* ctx = nullptr);

  /// Evaluates N candidates in one call, returning N feature columns.
  /// Candidates sharing group keys reuse one GroupIndex; predicates repeated
  /// across candidates hit the mask shard; candidates differing only in agg
  /// function share one bucket materialization; artifact builds and the
  /// per-candidate kernels both run on the configured ThreadPool.
  ///
  /// Fail-fast contract: any candidate failing to compile or build fails
  /// the whole batch (the store still keeps every artifact that did publish,
  /// and the planner stays usable). For per-candidate isolation use
  /// EvaluateManyIsolated.
  Result<std::vector<std::vector<double>>> EvaluateMany(
      const std::vector<AggQuery>& queries, const Table& training,
      const Table& relevant, const ExecContext* ctx = nullptr);

  /// One candidate's outcome under the isolated contract: `values` is
  /// meaningful iff `status.ok()`.
  struct CandidateResult {
    Status status;
    std::vector<double> values;
  };

  /// Partial-failure-isolated EvaluateMany: a candidate that fails —
  /// validation, any artifact build it depends on, or its kernel — yields
  /// its Status in its own result slot while every other candidate still
  /// evaluates, byte-identical to a batch that never contained the failing
  /// one (artifacts are keyed by content, and a failed build is simply
  /// never published). The outer Result is an error only for batch-level
  /// failures: a tripped ExecContext (kCancelled / kDeadlineExceeded) or an
  /// exhausted memory budget (kResourceExhausted).
  Result<std::vector<CandidateResult>> EvaluateManyIsolated(
      const std::vector<AggQuery>& queries, const Table& training,
      const Table& relevant, const ExecContext* ctx = nullptr);

  /// Grouped result table of Def. 2 (key columns + "feature"), in
  /// first-seen group order among filtered rows.
  Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant,
                                const ExecContext* ctx = nullptr);

  /// Compiles `queries` into a frozen ServingPlan: prepares every
  /// relevant-side artifact (group indexes, predicate masks, value views,
  /// bucket materializations) through the store, but binds no training-row
  /// maps — those are per-batch and built by ExecuteServingPlan. `queries`
  /// must outlive the returned plan (candidates point into it), and no
  /// further Prepare/Evaluate call may run on this planner while the plan
  /// is in use.
  Result<ServingPlan> CompileServingPlan(const std::vector<AggQuery>& queries,
                                         const Table& relevant,
                                         const ExecContext* ctx = nullptr);

  /// The artifact store backing this planner (cap tuning, introspection).
  ArtifactStore& store() { return store_; }
  const ArtifactStore& store() const { return store_; }

  /// \name Store shortcuts (tests and benches).
  /// @{
  size_t num_group_index_builds() const { return store_.num_group_builds(); }
  size_t num_mask_builds() const { return store_.num_mask_builds(); }
  size_t num_materializations() const { return store_.num_materializations(); }
  size_t num_evictions() const { return store_.num_evictions(); }
  void set_mask_cache_cap_bytes(size_t cap) {
    store_.set_mask_cache_cap_bytes(cap);
  }
  void set_mat_cache_cap_bytes(size_t cap) {
    store_.set_mat_cache_cap_bytes(cap);
  }
  /// @}

  /// Compile-time shape of the last prepared batch (tests pin DAG dedup and
  /// topology through this).
  struct PlanStats {
    size_t candidates = 0;
    /// Deduplicated artifact requests by kind (cached or built).
    size_t group_requests = 0;
    /// Training-row maps scheduled for (re)build this batch — unlike the
    /// request counts above, cached up-to-date maps are not counted.
    size_t train_map_requests = 0;
    size_t mask_requests = 0;
    size_t conjunction_requests = 0;
    size_t view_requests = 0;
    size_t mat_requests = 0;
    /// Artifact builds actually executed (requests that missed the store).
    size_t builds_run = 0;
    /// Dependency stages that ran at least one build (<= 3).
    size_t stages_run = 0;
    /// Candidates whose compiled resolution was served from the memo
    /// (compile_hits) vs derived fresh (compile_misses); duplicates within
    /// the batch count as hits after the first occurrence.
    size_t compile_hits = 0;
    size_t compile_misses = 0;
    /// Build re-attempts taken under the RetryPolicy (0 without retries).
    size_t build_retries = 0;
    /// Bucket materializations short-circuited because their selection mask
    /// had no set bits (the fused conjunction popcount — or a cached mask's
    /// count — proved the bucket empty before any build ran).
    size_t empty_selections = 0;
    /// Morsels processed when the batch ran the out-of-core pipeline (0 on
    /// the in-RAM path; see last_morsel_stats() for the full breakdown).
    size_t morsels = 0;
  };
  const PlanStats& last_plan_stats() const { return plan_stats_; }

  /// \name Cumulative compile-memo counters across all batches (the bench's
  /// plan_compile_hit_rate).
  /// @{
  size_t compile_cache_hits() const { return compile_cache_hits_; }
  size_t compile_cache_misses() const { return compile_cache_misses_; }
  size_t compile_cache_size() const { return compile_cache_.size(); }
  size_t compile_cache_flushes() const { return compile_cache_flushes_; }
  /// @}

  /// Build re-attempts summed across all batches (PlanStats::build_retries
  /// resets per Prepare; fit-level diagnostics read this).
  size_t build_retries_total() const { return build_retries_total_; }

  /// Entry cap of the compile memo. Shapes are tiny (a handful of strings)
  /// but content-keyed, so a long-lived planner must not grow without bound
  /// — the same concern the byte-capped shards and feature cache address.
  /// When a batch *starts* above the cap the memo is flushed wholesale
  /// (never mid-batch: resolved shape pointers stay valid for the whole
  /// Prepare); the next searches simply re-miss.
  void set_compile_cache_cap_entries(size_t cap) {
    compile_cache_cap_entries_ = cap;
  }

  /// \name Phase timings of the last EvaluateMany call (bench reporting).
  /// @{
  double last_prepare_seconds() const { return prepare_seconds_; }
  double last_aggregate_seconds() const { return aggregate_seconds_; }
  /// @}

 private:
  /// Memoized per-candidate compile resolution: everything derivable from
  /// the query content alone — validation outcome and the artifact cache
  /// keys the compile pass interns. Batch-dependent choices (shared-bucket
  /// materialization, store hits) are *not* cached here; they re-resolve
  /// each batch against the memoized keys.
  struct CompiledShape {
    std::string group_key;
    /// Indices of non-trivial predicates in the query's predicate list,
    /// with their cache keys (parallel vectors).
    std::vector<uint32_t> active_preds;
    std::vector<std::string> pred_keys;
    /// Conjunction cache key; empty unless active_preds.size() >= 2.
    std::string combo_key;
    /// Bucket key (group keys + agg attribute + predicates).
    std::string bucket_key;
  };

  /// Looks up / derives the compiled shape of `q` (validating on a miss)
  /// and updates the hit/miss counters.
  Result<const CompiledShape*> ResolveShape(const AggQuery& q,
                                            const Table& relevant);

  /// The morsel size this planner actually runs with: the per-planner
  /// override when non-zero, else the config/env resolution. 0 = in-RAM.
  size_t ResolvedMorselRows() const;

  /// The morsel-mode twin of Prepare + fan-out: streams the relevant table
  /// through ExecuteMorsels, then scatters per-group values through
  /// batch-local training-row maps. Same slot_errors contract as Prepare.
  Result<std::vector<std::vector<double>>> EvaluateManyMorsel(
      const std::vector<AggQuery>& queries, const Table& training,
      const Table& relevant, const ExecContext* ctx,
      std::vector<Status>* slot_errors);

  /// Compiles `queries` into the artifact DAG, executes the missing builds
  /// stage-parallel on the pool, publishes them, and resolves one
  /// PlannedCandidate per query. `training` may be null only when
  /// `for_grouped_result` is set (no training-row maps are built then, and
  /// candidates always take the streaming path: view instead of bucket
  /// materialization). Streaming-family aggregates materialize only when
  /// several candidates of the batch share their bucket.
  ///
  /// `slot_errors` selects the failure contract: nullptr is fail-fast (the
  /// first compile or build error fails the call); non-null must be sized
  /// to `queries` and receives each candidate's isolated Status — the call
  /// itself then only fails batch-wide (tripped ctx, exhausted budget). In
  /// both modes only fully-built artifacts are ever published, and a failed
  /// stage never runs its publish step.
  Result<std::vector<PlannedCandidate>> Prepare(
      const std::vector<AggQuery>& queries, const Table* training,
      const Table& relevant, bool for_grouped_result,
      const ExecContext* ctx = nullptr,
      std::vector<Status>* slot_errors = nullptr);

  ArtifactStore store_;
  ThreadPool* pool_ = nullptr;
  /// Resolved once per Prepare from kernel_backend_; points at a static
  /// KernelOps table, so fan-out threads read it freely.
  const KernelOps* ops_ = nullptr;
  KernelBackend kernel_backend_ = KernelBackend::kAuto;
  size_t morsel_rows_ = 0;
  bool morsel_prefetch_ = true;
  MorselExecStats morsel_stats_;
  RetryPolicy retry_;
  PlanStats plan_stats_;
  std::unordered_map<std::string, CompiledShape> compile_cache_;
  size_t compile_cache_cap_entries_ = 1u << 16;
  size_t compile_cache_hits_ = 0;
  size_t compile_cache_misses_ = 0;
  size_t compile_cache_flushes_ = 0;
  size_t build_retries_total_ = 0;
  double prepare_seconds_ = 0.0;
  double aggregate_seconds_ = 0.0;
};

}  // namespace featlib

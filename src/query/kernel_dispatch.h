#pragma once

/// \file kernel_dispatch.h
/// \brief Runtime-selected kernel backends behind the backend-neutral
/// planner.
///
/// `PlannedCandidate` (query/kernels.h) was deliberately specified as pure
/// const inputs so that more than one kernel implementation could consume
/// it. This layer adds the second implementation set and the switch between
/// them: a `KernelOps` table bundles every kernel entry point the planner
/// dispatches through — streaming aggregation, bucket-slice aggregation,
/// bucket materialization, the full per-candidate feature kernel, and the
/// predicate-to-mask evaluation of the prepare phase.
///
/// Two tables exist:
///   - **scalar** — the reference kernels in query/kernels.cc, the
///     bit-exactness oracle every other backend is tested against;
///   - **simd**   — the vectorized set in query/kernels_simd.cc. At process
///     start the CPU is probed once (AVX2 on x86-64, NEON on aarch64); on a
///     machine with neither the simd table still works — its functions fall
///     back to run-decoded scalar loops — and reports SimdLevel::kScalarOnly.
///
/// **Bit-identity contract.** Backend choice is purely a performance knob:
/// every entry of every table must produce byte-identical output for the
/// same inputs, at every thread count. The SIMD kernels therefore preserve
/// the scalar kernels' accumulation order (floating-point reductions are
/// order-preserving, not fastest-possible) and are swept against the scalar
/// oracle by tests/kernel_dispatch_test.cc and the recorded goldens.
///
/// Selection order (first non-auto wins):
///   1. the per-planner override (QueryPlanner::set_kernel_backend),
///   2. FEATLIB_KERNEL_BACKEND=scalar|simd|auto (environment),
///   3. FeatAugConfig::Global().kernel_backend,
///   4. auto: simd when the CPU has a vector ISA, scalar otherwise.

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "query/kernels.h"
#include "query/predicate.h"

namespace featlib {

/// The vector ISA the simd table was able to engage.
enum class SimdLevel {
  kScalarOnly,  ///< no vector ISA (or FEATLIB_DISABLE_SIMD build)
  kAvx2,        ///< x86-64 AVX2
  kNeon,        ///< aarch64 NEON
};

/// Canonical lowercase name ("scalar" / "avx2" / "neon") — the bench's
/// kernel_dispatch_level field.
const char* SimdLevelName(SimdLevel level);

/// The ISA detected on this CPU, probed once per process. Returns
/// kScalarOnly under FEATLIB_DISABLE_SIMD builds regardless of hardware.
SimdLevel DetectedSimdLevel();

/// One kernel backend: every entry point the planner dispatches through.
/// All entries are pure functions (no caches, no locks), so any number of
/// fan-out threads may call them concurrently, and tables may be mixed
/// freely across calls — outputs are byte-identical by contract.
struct KernelOps {
  /// Which backend this table implements (never kAuto).
  KernelBackend backend;
  /// The ISA its vectorized paths engage (kScalarOnly for the scalar table).
  SimdLevel level;

  /// See AggregateStreaming (query/kernels.h).
  std::vector<double> (*aggregate_streaming)(
      AggFunction fn, const GroupIndex& index, const Bitset* mask,
      const double* view, std::vector<uint32_t>* first_selected_row);
  /// See AggregateFromMaterialized.
  std::vector<double> (*aggregate_from_materialized)(
      AggFunction fn, const MaterializedValues& m);
  /// See BuildMaterializedValues.
  MaterializedValues (*build_materialized)(const GroupIndex& index,
                                           const Bitset* mask,
                                           const double* view);
  /// See ComputeFeatureKernel.
  std::vector<double> (*compute_feature)(const PlannedCandidate& p);
  /// Evaluates the filter into `out` (pre-sized to the table, all-zero):
  /// sets exactly the bits of rows where CompiledFilter::Matches is true.
  void (*build_filter_mask)(const CompiledFilter& filter, Bitset* out);
};

/// The table for `backend`; kAuto resolves to simd when the CPU has a
/// vector ISA and scalar otherwise. The returned reference is to a static
/// table — storing it is safe for the process lifetime.
const KernelOps& KernelOpsFor(KernelBackend backend);

/// Full selection chain for a call-site override: a non-auto
/// `override_backend` wins, else FEATLIB_KERNEL_BACKEND / FeatAugConfig,
/// else ISA detection.
const KernelOps& ResolveKernelOps(KernelBackend override_backend);

/// The simd table (internal: exposed for KernelOpsFor and the parity
/// tests/bench, which pin simd-vs-scalar regardless of the environment).
const KernelOps& SimdKernelOps();
/// The scalar oracle table.
const KernelOps& ScalarKernelOps();

}  // namespace featlib

#pragma once

/// \file relation_graph.h
/// \brief Multi-table schema declaration and the §III reductions to the
/// (D, R) scenario.
///
/// The paper reduces richer schemas to one base table plus one-to-many
/// relevant tables:
///  - *Deep-layer relationships* are handled "by joining all the tables
///    into one relevant table": a fact table (one-to-many from the base)
///    is flattened with its transitive many-to-one lookup closure, e.g.
///    Instacart's order_items -> products -> departments.
///  - *Multiple relevant tables* become multiple (D, R) scenarios.
///  - *Many-to-many* relationships (future work in the paper's conclusion)
///    decompose into one-to-many plus many-to-one through the bridge
///    table: declare the bridge as a fact and the far side as a lookup.
///
/// A RelationGraph owns the tables, validates the declared edges, and
/// produces flattened relevant tables.

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// One flattened (D, R) scenario produced from the graph.
struct RelevantScenario {
  /// Fact table name the scenario came from.
  std::string name;
  /// Flattened relevant table (fact + transitive lookups).
  Table relevant;
  /// FK attributes joining back to the base table.
  std::vector<std::string> fk_attrs;
  /// Lookup keys consumed by the flatten (e.g. product_id): structural
  /// columns, not features — template inference should skip them.
  std::vector<std::string> join_keys;
};

/// \brief A schema graph of tables with lookup (many-to-one) and fact
/// (one-to-many w.r.t. a base) edges.
class RelationGraph {
 public:
  /// Registers a table under a unique name.
  Status AddTable(const std::string& name, Table table);

  /// Declares a many-to-one lookup edge: every `from` row references at
  /// most one `to` row through equal-named `keys` (present on both sides;
  /// `to` must be unique on them — verified at flatten time by the join).
  /// One-to-one edges are the special case where `from` is also unique.
  Status AddLookup(const std::string& from, const std::string& to,
                   const std::vector<std::string>& keys);

  /// Declares `fact` one-to-many with respect to `base` via `fk_attrs`
  /// (columns of both `fact` and `base`).
  Status AddFact(const std::string& base, const std::string& fact,
                 const std::vector<std::string>& fk_attrs);

  /// Flattens `fact` with its transitive lookup closure into one relevant
  /// table (the deep-layer preparation). Lookups are applied breadth-first
  /// from the fact table; columns of a joined dimension that collide with
  /// an existing name get a "<table>_" prefix. Lookup cycles are an error.
  /// If `join_keys_out` is non-null it receives the distinct lookup keys
  /// the flatten consumed (structural columns, not features).
  Result<Table> FlattenRelevant(const std::string& fact,
                                std::vector<std::string>* join_keys_out = nullptr) const;

  /// Builds one flattened scenario per fact table declared for `base`,
  /// in declaration order — the "multiple relevant tables" reduction.
  Result<std::vector<RelevantScenario>> BuildScenarios(const std::string& base) const;

  /// Borrowing accessor for a registered table.
  Result<const Table*> GetTable(const std::string& name) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  struct LookupEdge {
    std::string from;
    std::string to;
    std::vector<std::string> keys;
  };
  struct FactEdge {
    std::string base;
    std::string fact;
    std::vector<std::string> fk_attrs;
  };

  Result<size_t> IndexOf(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<Table> tables_;
  std::vector<LookupEdge> lookups_;
  std::vector<FactEdge> facts_;
};

}  // namespace featlib

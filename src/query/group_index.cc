#include "query/group_index.h"

#include <cstring>

namespace featlib {

namespace {

// Composite group keys are encoded as raw byte strings: 8 bytes per
// component. Int-backed columns contribute the value, string columns the
// dictionary code (canonicalized to the relevant table's dictionary), double
// columns the bit pattern of the signed-zero-normalized value.
void AppendComponent(int64_t v, std::string* out) {
  char buf[sizeof(int64_t)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void AppendDoubleComponent(double v, std::string* out) {
  int64_t bits;
  const double norm = NormalizeSignedZero(v);
  std::memcpy(&bits, &norm, sizeof(bits));
  AppendComponent(bits, out);
}

bool EncodeKeyFromColumns(const std::vector<const Column*>& cols, size_t row,
                          std::string* out) {
  out->clear();
  for (const Column* col : cols) {
    if (col->IsNull(row)) return false;
    switch (col->type()) {
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool:
        AppendComponent(col->IntAt(row), out);
        break;
      case DataType::kString:
        AppendComponent(col->CodeAt(row), out);
        break;
      case DataType::kDouble:
        AppendDoubleComponent(col->DoubleAt(row), out);
        break;
    }
  }
  return true;
}

/// Heap bytes of one key-map entry: the key's character storage (composite
/// keys are 8 bytes per component, so they always spill std::string's SSO at
/// 2+ components — count the buffer unconditionally to stay deterministic
/// across libstdc++ SSO thresholds) plus node + bucket overhead.
size_t KeyMapEntryBytes(const std::string& key) {
  return key.size() + sizeof(std::string) + sizeof(uint32_t) +
         4 * sizeof(void*);
}

/// Resolves the group-key columns of one (morsel) table, in key order.
Result<std::vector<const Column*>> ResolveKeyColumns(
    const Table& table, const std::vector<std::string>& group_keys) {
  std::vector<const Column*> cols;
  cols.reserve(group_keys.size());
  for (const auto& k : group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(k));
    cols.push_back(col);
  }
  return cols;
}

}  // namespace

Result<GroupIndex> GroupIndex::Build(const Table& relevant,
                                     const std::vector<std::string>& group_keys) {
  GroupIndex out;
  out.group_keys_ = group_keys;
  std::vector<const Column*> key_cols;
  key_cols.reserve(group_keys.size());
  for (const auto& k : group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    key_cols.push_back(col);
  }
  const size_t n = relevant.num_rows();
  out.row_groups_.assign(n, kNoGroup);
  out.group_of_key_.reserve(n / 4 + 1);
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    if (!EncodeKeyFromColumns(key_cols, row, &key)) continue;
    auto [it, inserted] = out.group_of_key_.try_emplace(
        key, static_cast<uint32_t>(out.num_groups_));
    if (inserted) ++out.num_groups_;
    out.row_groups_[row] = it->second;
  }
  return out;
}

Result<std::vector<uint32_t>> GroupIndex::MapTrainingRows(
    const Table& training, const Table& relevant) const {
  // Per-key-column translator from the training table's representation to
  // the relevant table's canonical one (string codes differ across tables).
  struct KeyColumnPair {
    const Column* d_col;
    const Column* r_col;
    // For string columns: d_code -> r_code (-1 when absent from R).
    std::vector<int32_t> code_map;
  };
  std::vector<KeyColumnPair> pairs;
  pairs.reserve(group_keys_.size());
  for (const auto& k : group_keys_) {
    auto d_col = training.GetColumn(k);
    if (!d_col.ok()) {
      return Status::InvalidArgument("group key missing from training table: " + k);
    }
    FEAT_ASSIGN_OR_RETURN(const Column* r_col, relevant.GetColumn(k));
    KeyColumnPair p{d_col.value(), r_col, {}};
    if (r_col->type() == DataType::kString) {
      if (p.d_col->type() != DataType::kString) {
        return Status::InvalidArgument("join key type mismatch on " + k);
      }
      const auto& d_dict = p.d_col->dictionary();
      p.code_map.resize(d_dict.size());
      for (size_t i = 0; i < d_dict.size(); ++i) {
        p.code_map[i] = r_col->FindCode(d_dict[i]);
      }
    }
    pairs.push_back(std::move(p));
  }

  std::vector<uint32_t> out(training.num_rows(), kNoGroup);
  std::string key;
  for (size_t row = 0; row < training.num_rows(); ++row) {
    key.clear();
    bool valid = true;
    for (const KeyColumnPair& p : pairs) {
      if (p.d_col->IsNull(row)) {
        valid = false;
        break;
      }
      switch (p.r_col->type()) {
        case DataType::kInt64:
        case DataType::kDatetime:
        case DataType::kBool:
          AppendComponent(p.d_col->IntAt(row), &key);
          break;
        case DataType::kString: {
          const int32_t d_code = p.d_col->CodeAt(row);
          const int32_t r_code = p.code_map[static_cast<size_t>(d_code)];
          if (r_code < 0) {  // key value never occurs in R
            valid = false;
            break;
          }
          AppendComponent(r_code, &key);
          break;
        }
        case DataType::kDouble:
          AppendDoubleComponent(p.d_col->DoubleAt(row), &key);
          break;
      }
      if (!valid) break;
    }
    if (!valid) continue;
    auto it = group_of_key_.find(key);
    if (it != group_of_key_.end()) out[row] = it->second;
  }
  return out;
}

size_t GroupIndex::SizeBytes() const {
  size_t bytes = row_groups_.capacity() * sizeof(uint32_t);
  for (const auto& [key, id] : group_of_key_) {
    (void)id;
    bytes += KeyMapEntryBytes(key);
  }
  return bytes;
}

Result<std::vector<uint32_t>> GroupIndexBuilder::AppendMorsel(
    const Table& morsel) {
  FEAT_ASSIGN_OR_RETURN(std::vector<const Column*> key_cols,
                        ResolveKeyColumns(morsel, group_keys_));
  const size_t n = morsel.num_rows();
  std::vector<uint32_t> out(n, GroupIndex::kNoGroup);
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    if (!EncodeKeyFromColumns(key_cols, row, &key)) continue;
    auto [it, inserted] =
        group_of_key_.try_emplace(key, static_cast<uint32_t>(num_groups_));
    if (inserted) ++num_groups_;
    out[row] = it->second;
  }
  return out;
}

Result<std::vector<uint32_t>> GroupIndexBuilder::MapMorsel(
    const Table& morsel) const {
  FEAT_ASSIGN_OR_RETURN(std::vector<const Column*> key_cols,
                        ResolveKeyColumns(morsel, group_keys_));
  const size_t n = morsel.num_rows();
  std::vector<uint32_t> out(n, GroupIndex::kNoGroup);
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    if (!EncodeKeyFromColumns(key_cols, row, &key)) continue;
    auto it = group_of_key_.find(key);
    if (it != group_of_key_.end()) out[row] = it->second;
  }
  return out;
}

size_t GroupIndexBuilder::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, id] : group_of_key_) {
    (void)id;
    bytes += KeyMapEntryBytes(key);
  }
  return bytes;
}

GroupIndex GroupIndexBuilder::Finish() && {
  GroupIndex out;
  out.group_keys_ = std::move(group_keys_);
  out.group_of_key_ = std::move(group_of_key_);
  out.num_groups_ = num_groups_;
  return out;
}

}  // namespace featlib

#pragma once

/// \file predicate.h
/// \brief WHERE-clause predicates over relevant-table attributes (Def. 2).
///
/// Categorical attributes take equality predicates `p = d`; numeric and
/// datetime attributes take (possibly one-sided) range predicates
/// `dlow <= p <= dhigh`.

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// \brief One conjunct of a WHERE clause.
struct Predicate {
  enum class Kind { kEquals, kRange };

  std::string attr;
  Kind kind = Kind::kEquals;

  /// Equality operand (kEquals). Strings compare by value.
  Value equals_value;

  /// Range bounds over the numeric view (kRange). Either side may be open.
  bool has_lo = false;
  bool has_hi = false;
  double lo = 0.0;
  double hi = 0.0;

  /// Builds `attr = value`.
  static Predicate Equals(std::string attr, Value value);
  /// Builds `lo <= attr <= hi`; pass std::nullopt for an open side.
  static Predicate Range(std::string attr, std::optional<double> lo,
                         std::optional<double> hi);

  /// True when the predicate constrains nothing (open range).
  bool IsTrivial() const { return kind == Kind::kRange && !has_lo && !has_hi; }

  /// SQL rendering, e.g. `department = 'Electronics'` or `ts >= 17000`.
  std::string ToSql(DataType attr_type) const;

  /// Deterministic canonical key identifying this predicate's semantics;
  /// the unit of AggQuery::CacheKey and of the batch executor's
  /// selection-mask cache.
  std::string CacheKey() const;
};

/// \brief A compiled conjunctive filter bound to one table.
///
/// Compilation resolves column pointers and dictionary codes once so that
/// per-row evaluation is branch-light; the same filter is reusable across
/// repeated executions in the search loop.
class CompiledFilter {
 public:
  /// One conjunct bound to its column. Public so the kernel backends
  /// (query/kernel_dispatch.h) can evaluate conjuncts over the raw column
  /// arrays; the semantics stay exactly those of Matches().
  struct BoundPredicate {
    const Column* column;
    Predicate::Kind kind;
    // Equality: either a code (string columns) or a numeric value.
    int32_t code = -1;          // -1 means "value absent from dictionary"
    bool is_string = false;
    double equals_numeric = 0.0;
    bool has_lo = false, has_hi = false;
    double lo = 0.0, hi = 0.0;
  };

  /// Binds predicates to `table`'s columns. Fails on unknown attributes or
  /// type mismatches (e.g. a range predicate on a string column).
  static Result<CompiledFilter> Compile(const std::vector<Predicate>& predicates,
                                        const Table& table);

  /// True when row `row` satisfies every conjunct. Null attribute values
  /// never satisfy a predicate (SQL three-valued logic collapses to false).
  bool Matches(size_t row) const;

  /// Returns all matching row indices.
  std::vector<uint32_t> Apply() const;

  /// \name Kernel-backend introspection.
  /// @{
  size_t num_rows() const { return num_rows_; }
  const std::vector<BoundPredicate>& bound() const { return bound_; }
  /// @}

 private:
  size_t num_rows_ = 0;
  std::vector<BoundPredicate> bound_;
};

}  // namespace featlib

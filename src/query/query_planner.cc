#include "query/query_planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/kernel_dispatch.h"
#include "query/predicate.h"

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

// Transient failure classes worth re-attempting under the RetryPolicy.
// kInvalidArgument/kNotFound describe the query shape and can never heal.
bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kInternal || s.code() == StatusCode::kIOError;
}

// Per-request jitter token: a cheap FNV-1a over the artifact's cache key
// mixed with the site name, so two requests retrying in lockstep draw
// different (but each deterministic) delays.
uint64_t RetryToken(const char* site, const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ull;
  }
  for (char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// Runs one artifact build (`body` returns its Status, storing the built
// value on success) behind a named fault-injection site, re-attempting
// transient failures per `retry`. `*retries` counts the re-attempts taken;
// it lives in the request struct (workers touch disjoint requests), and the
// coordinator sums them into PlanStats after the stages join. `token`
// decorrelates the jittered sleeps of concurrent failers.
template <typename Body>
Status BuildWithRetry(const char* site, const QueryPlanner::RetryPolicy& retry,
                      uint64_t token, int* retries, const Body& body) {
  Status last;
  for (int attempt = 0;; ++attempt) {
    Status s = FaultPoint(site);
    if (s.ok()) s = body();
    if (s.ok()) return s;
    last = std::move(s);
    if (!IsRetryable(last) || attempt + 1 >= retry.max_attempts) return last;
    ++*retries;
    const int delay = QueryPlanner::RetryDelayMs(retry, attempt, token);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

// Aggregates whose one-pass streaming kernel accumulates directly into
// per-group arrays; the rest materialize per-group value vectors.
bool IsStreamingAgg(AggFunction fn) {
  switch (fn) {
    case AggFunction::kCount:
    case AggFunction::kSum:
    case AggFunction::kMin:
    case AggFunction::kMax:
    case AggFunction::kAvg:
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample:
      return true;
    default:
      return false;
  }
}

// Cache key of a predicate conjunction's combined bitset, from the
// predicates' own cache keys. The "&\x1d" prefix keeps combos disjoint from
// single-predicate keys.
std::string ComboKey(const std::vector<std::string>& pred_keys) {
  std::string out = "&\x1d";
  for (const std::string& key : pred_keys) {
    out += key;
    out += "\x1d";
  }
  return out;
}

// Bucket key (candidates differing only in agg function share all grouped
// values), from precomputed parts.
std::string BucketKey(const std::string& group_key, const std::string& agg_attr,
                      const std::vector<std::string>& pred_keys) {
  std::string out = group_key;
  out += "\x1e";
  out += agg_attr;
  for (const std::string& key : pred_keys) {
    out += "\x1e";
    out += key;
  }
  return out;
}

// ---- Compile-time artifact request graph -----------------------------------
//
// One request per *distinct* artifact the batch needs; candidates reference
// requests by index. Each request carries a resolved store pointer (cached
// artifacts) or a build slot the prepare stages fill in parallel and the
// publish steps commit. Request vectors double as the deterministic publish
// order.

struct GroupReq {
  std::string key;
  const std::vector<std::string>* group_keys = nullptr;
  ArtifactStore::GroupArtifact* artifact = nullptr;  // cached or published
  bool need_build = false;
  bool need_train_map = false;  // (re)build the training-row map in stage B
  std::optional<GroupIndex> built;
  Status error;
  std::optional<std::vector<uint32_t>> built_map;
  Status map_error;
  int retries = 0;
};

struct MaskReq {  // one non-trivial WHERE predicate
  std::string key;
  const Predicate* pred = nullptr;
  const Bitset* bits = nullptr;  // cached or published
  std::optional<Bitset> built;
  Status error;
  int retries = 0;
};

struct ComboReq {  // conjunction of >= 2 predicates (depends on MaskReqs)
  std::string key;
  std::vector<size_t> parts;  // MaskReq indices; empty when cached
  const Bitset* bits = nullptr;
  std::optional<Bitset> built;
  /// Set-bit count of the conjunction, a free by-product of the fused
  /// AndWithCount build pass. Valid only for conjunctions built this batch
  /// (cached ones skipped the AND); stage C's empty-selection short-circuit
  /// reads it without rescanning the words.
  size_t count = 0;
  bool count_valid = false;
  Status error;
  int retries = 0;
};

struct ViewReq {  // numeric value view of one agg attribute
  std::string attr;
  const Column* col = nullptr;
  size_t n_rows = 0;
  const std::vector<double>* view = nullptr;
  std::optional<std::vector<double>> built;
  Status error;
  int retries = 0;
};

struct MatReq {  // bucket materialization (depends on group + mask + view)
  std::string key;
  size_t group = 0;
  int mask_single = -1;
  int mask_combo = -1;
  size_t view = 0;
  const MaterializedValues* values = nullptr;
  std::optional<MaterializedValues> built;
  bool empty_selection = false;  // mask proved empty; build short-circuited
  Status error;
  int retries = 0;
};

/// A candidate resolved to artifact-request indices (-1 = not needed).
struct CandidateSpec {
  const AggQuery* query = nullptr;
  size_t group = 0;
  bool has_mask = false;
  int mask_single = -1;
  int mask_combo = -1;
  int view = -1;
  int mat = -1;                               // MatReq to build/join
  const MaterializedValues* mat_hit = nullptr;  // store hit, no request
};

}  // namespace

int QueryPlanner::RetryDelayMs(const RetryPolicy& policy, int attempt,
                               uint64_t token) {
  if (policy.backoff_ms <= 0) return 0;
  const int64_t cap =
      std::max<int64_t>(policy.backoff_ms, policy.max_backoff_ms);
  // Saturating doubling: shift until the cap would be crossed.
  int64_t base = policy.backoff_ms;
  for (int i = 0; i < attempt && base < cap; ++i) base <<= 1;
  base = std::min(base, cap);
  // splitmix64 finalizer over (seed, token, attempt): uniform enough to
  // spread sleepers, and a pure function of its inputs so every retry
  // schedule is reproducible run-to-run.
  uint64_t x = policy.jitter_seed ^ (token * 0x9e3779b97f4a7c15ull) ^
               static_cast<uint64_t>(attempt);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  // Equal jitter: [base/2, base] keeps a meaningful minimum wait while
  // halving the collision window.
  const int64_t half = base / 2;
  const int64_t span = base - half + 1;
  return static_cast<int>(half + static_cast<int64_t>(x % span));
}

Result<const QueryPlanner::CompiledShape*> QueryPlanner::ResolveShape(
    const AggQuery& q, const Table& relevant) {
  std::string content_key = q.CacheKey();
  auto it = compile_cache_.find(content_key);
  if (it != compile_cache_.end()) {
    ++plan_stats_.compile_hits;
    ++compile_cache_hits_;
    return &it->second;
  }
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  CompiledShape shape;
  shape.group_key = StrJoin(q.group_keys, "\x1f");
  for (size_t j = 0; j < q.predicates.size(); ++j) {
    if (q.predicates[j].IsTrivial()) continue;
    shape.active_preds.push_back(static_cast<uint32_t>(j));
    shape.pred_keys.push_back(q.predicates[j].CacheKey());
  }
  if (shape.active_preds.size() >= 2) {
    shape.combo_key = ComboKey(shape.pred_keys);
  }
  shape.bucket_key = BucketKey(shape.group_key, q.agg_attr, shape.pred_keys);
  ++plan_stats_.compile_misses;
  ++compile_cache_misses_;
  auto [inserted_it, inserted] =
      compile_cache_.emplace(std::move(content_key), std::move(shape));
  (void)inserted;
  return &inserted_it->second;
}

Result<std::vector<PlannedCandidate>> QueryPlanner::Prepare(
    const std::vector<AggQuery>& queries, const Table* training,
    const Table& relevant, bool for_grouped_result, const ExecContext* ctx,
    std::vector<Status>* slot_errors) {
  // Isolated mode: per-candidate failures land in slot_errors and the call
  // only fails batch-wide (tripped ctx / exhausted budget). Fail-fast mode
  // (slot_errors == nullptr): the first failure fails the call.
  const bool isolated = slot_errors != nullptr;
  FEAT_CHECK(!isolated || slot_errors->size() == queries.size(),
             "slot_errors must be pre-sized to the query batch");
  FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));

  plan_stats_ = PlanStats{};
  plan_stats_.candidates = queries.size();

  // Resolve the kernel backend once per batch; every phase below (mask
  // build, materialization, fan-out kernels) dispatches through this table.
  ops_ = &ResolveKernelOps(kernel_backend_);

  // Over-cap memo is flushed between batches only: shape pointers resolved
  // below stay valid for the whole Prepare.
  if (compile_cache_.size() > compile_cache_cap_entries_) {
    compile_cache_.clear();
    ++compile_cache_flushes_;
  }

  // ---- Compile: resolve every candidate's memoized shape — validation and
  // artifact-key derivation run only for content keys never seen by this
  // planner — then one sequential pass dedups artifact requests and
  // resolves what the store already holds (hits are epoch-stamped, pinning
  // them for the whole batch). ----
  std::vector<const CompiledShape*> shapes(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto shape = ResolveShape(queries[i], relevant);
    if (shape.ok()) {
      shapes[i] = shape.value();
    } else if (isolated) {
      // An invalid candidate is its own failure; the rest of the batch
      // plans as if it were never proposed.
      (*slot_errors)[i] = shape.status();
      shapes[i] = nullptr;
    } else {
      return shape.status();
    }
  }

  // Buckets shared by several candidates pay one materialization and serve
  // every member from flat slices; singleton buckets keep the cheaper
  // streaming kernel for streaming-family aggregates.
  std::unordered_map<std::string, int> bucket_counts;
  if (!for_grouped_result) {
    for (const CompiledShape* shape : shapes) {
      if (shape != nullptr) ++bucket_counts[shape->bucket_key];
    }
  }

  std::vector<GroupReq> groups;
  std::vector<MaskReq> masks;
  std::vector<ComboReq> combos;
  std::vector<ViewReq> views;
  std::vector<MatReq> mats;
  std::unordered_map<std::string, size_t> group_idx, mask_idx, combo_idx,
      view_idx, mat_idx;

  auto intern_group = [&](const AggQuery& q, const std::string& key) -> size_t {
    auto [it, inserted] = group_idx.emplace(key, groups.size());
    if (inserted) {
      GroupReq req;
      req.key = key;
      req.group_keys = &q.group_keys;
      req.artifact = store_.FindGroup(key);
      req.need_build = req.artifact == nullptr;
      groups.push_back(std::move(req));
    }
    return it->second;
  };

  auto intern_mask = [&](const Predicate& p, const std::string& key) -> size_t {
    auto [it, inserted] = mask_idx.emplace(key, masks.size());
    if (inserted) {
      MaskReq req;
      req.key = key;
      req.pred = &p;
      req.bits = store_.FindMask(key);
      masks.push_back(std::move(req));
    }
    return it->second;
  };

  auto intern_view = [&](const std::string& attr) -> Result<size_t> {
    auto [it, inserted] = view_idx.emplace(attr, views.size());
    if (inserted) {
      ViewReq req;
      req.attr = attr;
      req.view = store_.FindView(attr);
      if (req.view == nullptr) {
        auto col = relevant.GetColumn(attr);
        if (!col.ok()) {
          // Un-intern so a later candidate naming the same missing column
          // resolves the same error instead of reading a dangling index
          // (matters in isolated mode, where planning continues).
          view_idx.erase(attr);
          return col.status();
        }
        req.col = col.value();
        req.n_rows = relevant.num_rows();
      }
      views.push_back(std::move(req));
    }
    return it->second;
  };

  std::vector<CandidateSpec> specs(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (shapes[i] == nullptr) continue;  // isolated compile failure
    const AggQuery& q = queries[i];
    const CompiledShape& shape = *shapes[i];
    CandidateSpec& spec = specs[i];
    spec.query = &q;
    spec.group = intern_group(q, shape.group_key);
    if (training != nullptr) groups[spec.group].need_train_map = true;

    // A bucket hit (or a bucket another candidate already requested)
    // carries the selection baked in: the kernel needs neither mask nor
    // view. ExecuteAggQuery never takes this path — it streams so it can
    // recover first-selected-row group order.
    if (!for_grouped_result && !q.agg_attr.empty()) {
      auto pending = mat_idx.find(shape.bucket_key);
      if (pending != mat_idx.end()) {
        spec.mat = static_cast<int>(pending->second);
        continue;
      }
      spec.mat_hit = store_.FindMaterialized(shape.bucket_key);
      if (spec.mat_hit != nullptr) continue;
    }

    // Selection mask: the predicate's own bitset for a single conjunct, a
    // dedicated conjunction bitset (word-wise AND of the constituents) for
    // longer ones. A cached conjunction needs no constituent requests.
    if (!shape.active_preds.empty()) {
      spec.has_mask = true;
      if (shape.active_preds.size() == 1) {
        spec.mask_single = static_cast<int>(intern_mask(
            q.predicates[shape.active_preds[0]], shape.pred_keys[0]));
      } else {
        auto [it, inserted] = combo_idx.emplace(shape.combo_key, combos.size());
        if (inserted) {
          ComboReq req;
          req.key = shape.combo_key;
          req.bits = store_.FindMask(shape.combo_key);
          if (req.bits == nullptr) {
            for (size_t k = 0; k < shape.active_preds.size(); ++k) {
              req.parts.push_back(intern_mask(
                  q.predicates[shape.active_preds[k]], shape.pred_keys[k]));
            }
          }
          combos.push_back(std::move(req));
        }
        spec.mask_combo = static_cast<int>(it->second);
      }
    }

    // COUNT(*) candidates have no agg attribute: they stream presence
    // counts off the bitset and group ids alone, reading no value view.
    if (q.agg_attr.empty()) continue;

    auto view_slot = intern_view(q.agg_attr);
    if (!view_slot.ok()) {
      if (!isolated) return view_slot.status();
      (*slot_errors)[i] = view_slot.status();
      continue;
    }
    const size_t view = view_slot.value();
    spec.view = static_cast<int>(view);
    const bool shared_bucket =
        !for_grouped_result && bucket_counts[shape.bucket_key] > 1;
    if (for_grouped_result || (IsStreamingAgg(q.agg) && !shared_bucket)) {
      continue;
    }
    auto [it, inserted] = mat_idx.emplace(shape.bucket_key, mats.size());
    if (inserted) {
      MatReq req;
      req.key = shape.bucket_key;
      req.group = spec.group;
      req.mask_single = spec.mask_single;
      req.mask_combo = spec.mask_combo;
      req.view = view;
      mats.push_back(std::move(req));
    }
    spec.mat = static_cast<int>(it->second);
  }

  // ---- Stage membership (computable at compile time: a group built this
  // batch always needs a fresh training-row map; cached ones only when the
  // map is absent or sized for a different training table). ----
  std::vector<size_t> a_groups, a_masks, a_views;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    if (groups[gi].need_build) a_groups.push_back(gi);
  }
  for (size_t mi = 0; mi < masks.size(); ++mi) {
    if (masks[mi].bits == nullptr) a_masks.push_back(mi);
  }
  for (size_t vi = 0; vi < views.size(); ++vi) {
    if (views[vi].view == nullptr) a_views.push_back(vi);
  }
  std::vector<size_t> b_maps, b_combos;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    GroupReq& req = groups[gi];
    if (!req.need_train_map) continue;
    const bool stale = req.need_build || !req.artifact->has_train_map ||
                       req.artifact->train_map.size() != training->num_rows();
    if (stale) b_maps.push_back(gi);
  }
  for (size_t ci = 0; ci < combos.size(); ++ci) {
    if (combos[ci].bits == nullptr) b_combos.push_back(ci);
  }
  std::vector<size_t> c_mats(mats.size());
  for (size_t i = 0; i < mats.size(); ++i) c_mats[i] = i;

  plan_stats_.group_requests = groups.size();
  plan_stats_.mask_requests = masks.size();
  plan_stats_.conjunction_requests = combos.size();
  plan_stats_.view_requests = views.size();
  plan_stats_.mat_requests = mats.size();
  plan_stats_.train_map_requests = b_maps.size();
  plan_stats_.builds_run = a_groups.size() + a_masks.size() + a_views.size() +
                           b_maps.size() + b_combos.size() + c_mats.size();
  const size_t n_a = a_groups.size() + a_masks.size() + a_views.size();
  const size_t n_b = b_maps.size() + b_combos.size();
  const size_t n_c = c_mats.size();
  plan_stats_.stages_run =
      (n_a > 0 ? 1 : 0) + (n_b > 0 ? 1 : 0) + (n_c > 0 ? 1 : 0);

  // ---- Memory budget: charge conservative size estimates for every build
  // this batch schedules, before any build allocates. The batch either fits
  // the budget or fails kResourceExhausted up front — a half-built batch
  // never trips mid-publish. ----
  if (ctx != nullptr) {
    const size_t n_rows = relevant.num_rows();
    size_t planned_bytes = 0;
    planned_bytes += a_groups.size() * n_rows * sizeof(uint32_t);
    planned_bytes += (a_masks.size() + b_combos.size()) * (n_rows / 8 + 16);
    planned_bytes += a_views.size() * n_rows * sizeof(double);
    if (training != nullptr) {
      planned_bytes += b_maps.size() * training->num_rows() * sizeof(uint32_t);
    }
    planned_bytes +=
        c_mats.size() * n_rows * (sizeof(double) + sizeof(uint32_t));
    FEAT_RETURN_NOT_OK(FaultPoint("planner.budget"));
    FEAT_RETURN_NOT_OK(ctx->ChargeMemory(planned_bytes));
  }

  // ---- Prepare: build-then-publish, stage by stage. Builds run on the
  // pool into per-request slots; each publish commits them into the store
  // in request order on this thread (deterministic at every thread count).
  // `stage_error` drives the fail-fast contract: it is written only inside
  // publish steps and read by later stages' tasks — ordered by the
  // ParallelFor barrier between stages. In isolated mode it stays OK and
  // failures travel per-request: a build whose dependency failed inherits
  // that Status, and only fully-built artifacts are ever published.
  Status stage_error;
  auto note_error = [&stage_error](const Status& s) {
    if (stage_error.ok() && !s.ok()) stage_error = s;
  };
  // A dependency hole with an OK Status only arises from abandoned builds,
  // which never reach a dependent stage (the stage pipeline returns first);
  // the fallback message is belt and braces.
  auto inherit = [](const Status& dep, const char* what) -> Status {
    return dep.ok() ? Status::Internal(std::string(what) + " unavailable")
                    : dep;
  };

  auto run_stage_a = [&](size_t t) {
    if (t < a_groups.size()) {
      GroupReq& req = groups[a_groups[t]];
      req.error = BuildWithRetry(
          "prepare.group", retry_, RetryToken("prepare.group", req.key),
          &req.retries, [&]() -> Status {
            auto built = GroupIndex::Build(relevant, *req.group_keys);
            if (!built.ok()) return built.status();
            req.built.emplace(std::move(built).ValueOrDie());
            return Status::OK();
          });
      return;
    }
    t -= a_groups.size();
    if (t < a_masks.size()) {
      MaskReq& req = masks[a_masks[t]];
      req.error = BuildWithRetry(
          "prepare.mask", retry_, RetryToken("prepare.mask", req.key),
          &req.retries, [&]() -> Status {
            auto filter = CompiledFilter::Compile({*req.pred}, relevant);
            if (!filter.ok()) return filter.status();
            Bitset bits(relevant.num_rows());
            ops_->build_filter_mask(filter.value(), &bits);
            req.built.emplace(std::move(bits));
            return Status::OK();
          });
      return;
    }
    ViewReq& req = views[a_views[t - a_masks.size()]];
    req.error = BuildWithRetry(
        "prepare.view", retry_, RetryToken("prepare.view", req.attr),
        &req.retries, [&]() -> Status {
          // NaN encodes null: stored doubles are never NaN (AppendDouble
          // maps NaN to null) and int/string numeric views cannot produce
          // one.
          std::vector<double> view(req.n_rows);
          for (size_t row = 0; row < req.n_rows; ++row) {
            view[row] = req.col->AsDouble(row);
          }
          req.built.emplace(std::move(view));
          return Status::OK();
        });
  };
  auto publish_stage_a = [&]() {
    for (size_t gi : a_groups) {
      GroupReq& req = groups[gi];
      if (!req.error.ok()) {
        if (!isolated) note_error(req.error);
        continue;
      }
      req.artifact = store_.PublishGroup(req.key, std::move(*req.built));
    }
    for (size_t mi : a_masks) {
      MaskReq& req = masks[mi];
      if (!req.error.ok()) {
        if (!isolated) note_error(req.error);
        continue;
      }
      req.bits = store_.PublishMask(req.key, std::move(*req.built),
                                    /*is_conjunction=*/false);
    }
    for (size_t vi : a_views) {
      ViewReq& req = views[vi];
      if (!req.error.ok()) {
        if (!isolated) note_error(req.error);
        continue;
      }
      req.view = store_.PublishView(req.attr, std::move(*req.built));
    }
  };

  auto run_stage_b = [&](size_t t) {
    if (!stage_error.ok()) return;  // fail-fast: a dependency failed
    if (t < b_maps.size()) {
      GroupReq& req = groups[b_maps[t]];
      if (req.artifact == nullptr) {  // isolated: its group build failed
        req.map_error = inherit(req.error, "group index");
        return;
      }
      req.map_error = BuildWithRetry(
          "prepare.train_map", retry_,
          RetryToken("prepare.train_map", req.key), &req.retries, [&]() -> Status {
            auto built =
                req.artifact->index.MapTrainingRows(*training, relevant);
            if (!built.ok()) return built.status();
            req.built_map.emplace(std::move(built).ValueOrDie());
            return Status::OK();
          });
      return;
    }
    ComboReq& req = combos[b_combos[t - b_maps.size()]];
    for (size_t k : req.parts) {
      if (masks[k].bits == nullptr) {  // isolated: constituent failed
        req.error = inherit(masks[k].error, "conjunction constituent");
        return;
      }
    }
    req.error = BuildWithRetry(
        "prepare.conjunction", retry_,
        RetryToken("prepare.conjunction", req.key), &req.retries, [&]() -> Status {
          // Fused AND + popcount: the last constituent's pass also yields
          // the conjunction's selectivity, which stage C uses to skip
          // materializing provably-empty buckets.
          Bitset combined = *masks[req.parts[0]].bits;
          size_t count = 0;
          for (size_t k = 1; k < req.parts.size(); ++k) {
            count = combined.AndWithCount(*masks[req.parts[k]].bits);
          }
          req.count = count;
          req.count_valid = true;
          req.built.emplace(std::move(combined));
          return Status::OK();
        });
  };
  auto publish_stage_b = [&]() {
    if (!stage_error.ok()) return;
    for (size_t gi : b_maps) {
      GroupReq& req = groups[gi];
      if (!req.map_error.ok()) {
        if (!isolated) note_error(req.map_error);
        continue;
      }
      store_.PublishTrainMap(req.artifact, std::move(*req.built_map));
    }
    for (size_t ci : b_combos) {
      ComboReq& req = combos[ci];
      if (!req.error.ok()) {
        if (!isolated) note_error(req.error);
        continue;
      }
      req.bits = store_.PublishMask(req.key, std::move(*req.built),
                                    /*is_conjunction=*/true);
    }
  };

  auto run_stage_c = [&](size_t t) {
    if (!stage_error.ok()) return;
    MatReq& req = mats[c_mats[t]];
    const GroupReq& group = groups[req.group];
    if (group.artifact == nullptr) {
      req.error = inherit(group.error, "group index");
      return;
    }
    const MaskReq* single =
        req.mask_single >= 0 ? &masks[static_cast<size_t>(req.mask_single)]
                             : nullptr;
    const ComboReq* combo =
        req.mask_combo >= 0 ? &combos[static_cast<size_t>(req.mask_combo)]
                            : nullptr;
    if (single != nullptr && single->bits == nullptr) {
      req.error = inherit(single->error, "mask");
      return;
    }
    if (combo != nullptr && combo->bits == nullptr) {
      req.error = inherit(combo->error, "conjunction");
      return;
    }
    const ViewReq& view = views[req.view];
    if (view.view == nullptr) {
      req.error = inherit(view.error, "value view");
      return;
    }
    const Bitset* mask = single != nullptr ? single->bits
                         : combo != nullptr ? combo->bits
                                            : nullptr;
    // Empty-selection early-out: a conjunction built this batch proved its
    // selectivity for free (fused AndWithCount); other masks pay one
    // popcount scan — far cheaper than streaming every row through the
    // builder. An empty bucket is constructed directly; the result is
    // byte-identical to what the builder returns for an all-zero mask.
    if (mask != nullptr) {
      req.empty_selection = combo != nullptr && combo->count_valid
                                ? combo->count == 0
                                : mask->Count() == 0;
    }
    req.error = BuildWithRetry(
        "prepare.mat", retry_, RetryToken("prepare.mat", req.key),
        &req.retries, [&]() -> Status {
          if (req.empty_selection) {
            const size_t n_groups = group.artifact->index.num_groups();
            MaterializedValues empty;
            empty.present.assign(n_groups, 0);
            empty.offsets.assign(n_groups + 1, 0);
            req.built.emplace(std::move(empty));
            return Status::OK();
          }
          req.built.emplace(ops_->build_materialized(
              group.artifact->index, mask, view.view->data()));
          return Status::OK();
        });
  };
  auto publish_stage_c = [&]() {
    if (!stage_error.ok()) return;
    for (size_t mi : c_mats) {
      MatReq& req = mats[mi];
      if (!req.error.ok()) {
        if (!isolated) note_error(req.error);
        continue;
      }
      req.values = store_.PublishMaterialized(req.key, std::move(*req.built));
    }
  };

  const std::vector<ThreadPool::Stage> stages = {
      {n_a, run_stage_a, publish_stage_a},
      {n_b, run_stage_b, publish_stage_b},
      {n_c, run_stage_c, publish_stage_c},
  };
  if (pool_ != nullptr) {
    // A tripped context returns here *before* the failed stage's publish:
    // the store keeps only fully-published artifacts of completed stages.
    FEAT_RETURN_NOT_OK(pool_->ParallelForStages(stages, ctx));
  } else {
    for (const ThreadPool::Stage& stage : stages) {
      for (size_t t = 0; t < stage.n; ++t) {
        FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
        stage.run(t);
      }
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      if (stage.publish) stage.publish();
    }
  }
  // Retries are summed before the fail-fast return: even a batch that gave
  // up reports the re-attempts it burned (tests and benches read this).
  for (const GroupReq& r : groups) {
    plan_stats_.build_retries += static_cast<size_t>(r.retries);
  }
  for (const MaskReq& r : masks) {
    plan_stats_.build_retries += static_cast<size_t>(r.retries);
  }
  for (const ComboReq& r : combos) {
    plan_stats_.build_retries += static_cast<size_t>(r.retries);
  }
  for (const ViewReq& r : views) {
    plan_stats_.build_retries += static_cast<size_t>(r.retries);
  }
  for (const MatReq& r : mats) {
    plan_stats_.build_retries += static_cast<size_t>(r.retries);
    if (r.empty_selection) ++plan_stats_.empty_selections;
  }
  build_retries_total_ += plan_stats_.build_retries;
  FEAT_RETURN_NOT_OK(stage_error);

  // ---- True-up: replace the conservative up-front estimates of the
  // hash-map-backed group indexes and the packed bitsets with the published
  // artifacts' actual SizeBytes() — charge the shortfall (group key maps are
  // invisible to the row-count estimate), release the surplus (packed masks
  // are 8x smaller than the byte-per-row guess). Views, training-row maps
  // and materializations are flat arrays already estimated exactly. ----
  if (ctx != nullptr) {
    const size_t n_rows = relevant.num_rows();
    size_t estimated = 0;
    size_t actual = 0;
    for (size_t gi : a_groups) {
      if (groups[gi].artifact == nullptr) continue;  // isolated build failure
      estimated += n_rows * sizeof(uint32_t);
      actual += groups[gi].artifact->index.SizeBytes();
    }
    for (size_t mi : a_masks) {
      if (masks[mi].bits == nullptr) continue;
      estimated += n_rows / 8 + 16;
      actual += masks[mi].bits->SizeBytes();
    }
    for (size_t ci : b_combos) {
      if (combos[ci].bits == nullptr) continue;
      estimated += n_rows / 8 + 16;
      actual += combos[ci].bits->SizeBytes();
    }
    if (actual > estimated) {
      FEAT_RETURN_NOT_OK(ctx->ChargeMemory(actual - estimated));
    } else {
      ctx->ReleaseMemory(estimated - actual);
    }
  }

  // ---- Resolve: every surviving candidate's kernel inputs are now
  // store-owned pointers, pinned for this epoch. In isolated mode a
  // candidate whose dependency chain has a failure takes that Status into
  // its slot instead (its PlannedCandidate stays empty and is skipped by
  // the fan-out). ----
  auto dependency_status = [&](const CandidateSpec& spec) -> Status {
    const GroupReq& g = groups[spec.group];
    if (g.artifact == nullptr) return inherit(g.error, "group index");
    if (training != nullptr && !g.map_error.ok()) return g.map_error;
    if (spec.mat >= 0) {
      const MatReq& m = mats[static_cast<size_t>(spec.mat)];
      if (m.values == nullptr) return inherit(m.error, "materialization");
      return Status::OK();
    }
    if (spec.mat_hit != nullptr) return Status::OK();
    if (spec.mask_single >= 0) {
      const MaskReq& m = masks[static_cast<size_t>(spec.mask_single)];
      if (m.bits == nullptr) return inherit(m.error, "mask");
    }
    if (spec.mask_combo >= 0) {
      const ComboReq& c = combos[static_cast<size_t>(spec.mask_combo)];
      if (c.bits == nullptr) return inherit(c.error, "conjunction");
    }
    if (spec.view >= 0) {
      const ViewReq& v = views[static_cast<size_t>(spec.view)];
      if (v.view == nullptr) return inherit(v.error, "value view");
    }
    return Status::OK();
  };

  std::vector<PlannedCandidate> planned(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (isolated && !(*slot_errors)[i].ok()) continue;
    const CandidateSpec& spec = specs[i];
    if (isolated) {
      Status dep = dependency_status(spec);
      if (!dep.ok()) {
        (*slot_errors)[i] = std::move(dep);
        continue;
      }
    }
    PlannedCandidate& p = planned[i];
    p.query = spec.query;
    ArtifactStore::GroupArtifact* g = groups[spec.group].artifact;
    p.index = &g->index;
    if (training != nullptr) p.train_map = &g->train_map;
    if (spec.mat >= 0) {
      p.mat = mats[static_cast<size_t>(spec.mat)].values;
      continue;
    }
    if (spec.mat_hit != nullptr) {
      p.mat = spec.mat_hit;
      continue;
    }
    if (spec.has_mask) {
      p.mask = spec.mask_single >= 0
                   ? masks[static_cast<size_t>(spec.mask_single)].bits
                   : combos[static_cast<size_t>(spec.mask_combo)].bits;
    }
    if (spec.view >= 0) {
      p.view = views[static_cast<size_t>(spec.view)].view->data();
    }
  }
  return planned;
}

Result<std::vector<double>> QueryPlanner::ComputeFeatureColumn(
    const AggQuery& q, const Table& training, const Table& relevant,
    const ExecContext* ctx) {
  const std::vector<AggQuery> one(1, q);
  if (ResolvedMorselRows() != 0) {
    FEAT_ASSIGN_OR_RETURN(
        std::vector<std::vector<double>> out,
        EvaluateManyMorsel(one, training, relevant, ctx, nullptr));
    return std::move(out[0]);
  }
  store_.BeginEpoch();
  FEAT_ASSIGN_OR_RETURN(std::vector<PlannedCandidate> planned,
                        Prepare(one, &training, relevant,
                                /*for_grouped_result=*/false, ctx));
  FEAT_RETURN_NOT_OK(FaultPoint("exec.kernel"));
  return ops_->compute_feature(planned[0]);
}

size_t QueryPlanner::ResolvedMorselRows() const {
  return morsel_rows_ != 0 ? morsel_rows_
                           : FeatAugConfig::Global().ResolvedMorselRows();
}

Result<std::vector<std::vector<double>>> QueryPlanner::EvaluateManyMorsel(
    const std::vector<AggQuery>& queries, const Table& training,
    const Table& relevant, const ExecContext* ctx,
    std::vector<Status>* slot_errors) {
  WallTimer timer;
  FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(
      ctx, queries.size() * training.num_rows() * sizeof(double)));
  ops_ = &ResolveKernelOps(kernel_backend_);
  MorselOptions options;
  options.morsel_rows = ResolvedMorselRows();
  options.prefetch = morsel_prefetch_;
  options.pool = pool_;
  options.ops = ops_;
  options.ctx = ctx;
  FEAT_ASSIGN_OR_RETURN(
      MorselResult streamed,
      ExecuteMorsels(queries, relevant, options, slot_errors));
  morsel_stats_ = streamed.stats;
  plan_stats_ = PlanStats{};
  plan_stats_.candidates = queries.size();
  plan_stats_.morsels = streamed.stats.morsels;
  prepare_seconds_ = timer.Seconds();

  // The batch-dependent step, same as serving: one training-row map per
  // distinct group index, into call-local storage. A failed map fails every
  // candidate on that index (isolated) or the batch (fail-fast) — exactly
  // the in-RAM train-map contract.
  timer.Restart();
  std::vector<std::vector<uint32_t>> train_maps(streamed.group_indexes.size());
  std::vector<Status> map_errors(streamed.group_indexes.size());
  for (size_t gi = 0; gi < streamed.group_indexes.size(); ++gi) {
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
    Status st = FaultPoint("prepare.train_map");
    if (st.ok()) {
      auto mapped =
          streamed.group_indexes[gi]->MapTrainingRows(training, relevant);
      if (mapped.ok()) {
        train_maps[gi] = std::move(mapped).value();
      } else {
        st = mapped.status();
      }
    }
    if (!st.ok()) {
      if (slot_errors == nullptr) return st;
      map_errors[gi] = std::move(st);
    }
  }

  // Scatter fan-out: disjoint output slots, deterministic at every thread
  // count (the per-group values are already frozen).
  std::vector<std::vector<double>> out(queries.size());
  std::vector<Status> kernel_errors(queries.size());
  auto run_one = [&](size_t i) {
    const size_t gi = streamed.candidate_group[i];
    if (gi == MorselResult::kNoGroupSpec) return;  // isolated slot failure
    if (!map_errors[gi].ok()) {
      kernel_errors[i] = map_errors[gi];
      return;
    }
    kernel_errors[i] = FaultPoint("exec.kernel");
    if (!kernel_errors[i].ok()) return;
    out[i] = ScatterPerGroup(streamed.per_group[i], train_maps[gi]);
  };
  if (pool_ != nullptr) {
    FEAT_RETURN_NOT_OK(pool_->ParallelFor(queries.size(), run_one, 0, ctx));
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      run_one(i);
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (kernel_errors[i].ok()) continue;
    if (slot_errors == nullptr) return std::move(kernel_errors[i]);
    (*slot_errors)[i] = std::move(kernel_errors[i]);
  }
  aggregate_seconds_ = timer.Seconds();
  return out;
}

Result<std::vector<std::vector<double>>> QueryPlanner::EvaluateMany(
    const std::vector<AggQuery>& queries, const Table& training,
    const Table& relevant, const ExecContext* ctx) {
  if (ResolvedMorselRows() != 0) {
    return EvaluateManyMorsel(queries, training, relevant, ctx, nullptr);
  }
  morsel_stats_ = MorselExecStats{};
  store_.BeginEpoch();
  WallTimer timer;
  FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(
      ctx, queries.size() * training.num_rows() * sizeof(double)));
  FEAT_ASSIGN_OR_RETURN(std::vector<PlannedCandidate> planned,
                        Prepare(queries, &training, relevant,
                                /*for_grouped_result=*/false, ctx));
  prepare_seconds_ = timer.Seconds();

  // ---- Fan-out phase: independent pure kernels into pre-sized slots, so
  // results are deterministic and thread- and chunk-count-independent. ----
  timer.Restart();
  std::vector<std::vector<double>> out(queries.size());
  std::vector<Status> kernel_errors(queries.size());
  auto run_one = [&](size_t i) {
    kernel_errors[i] = FaultPoint("exec.kernel");
    if (kernel_errors[i].ok()) out[i] = ops_->compute_feature(planned[i]);
  };
  if (pool_ != nullptr) {
    FEAT_RETURN_NOT_OK(pool_->ParallelFor(planned.size(), run_one, 0, ctx));
  } else {
    for (size_t i = 0; i < planned.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      run_one(i);
    }
  }
  for (const Status& s : kernel_errors) FEAT_RETURN_NOT_OK(s);
  aggregate_seconds_ = timer.Seconds();
  return out;
}

Result<std::vector<QueryPlanner::CandidateResult>>
QueryPlanner::EvaluateManyIsolated(const std::vector<AggQuery>& queries,
                                   const Table& training,
                                   const Table& relevant,
                                   const ExecContext* ctx) {
  if (ResolvedMorselRows() != 0) {
    std::vector<Status> morsel_slot_errors(queries.size());
    FEAT_ASSIGN_OR_RETURN(std::vector<std::vector<double>> values,
                          EvaluateManyMorsel(queries, training, relevant, ctx,
                                             &morsel_slot_errors));
    std::vector<CandidateResult> out(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i].status = std::move(morsel_slot_errors[i]);
      if (out[i].status.ok()) out[i].values = std::move(values[i]);
    }
    return out;
  }
  morsel_stats_ = MorselExecStats{};
  store_.BeginEpoch();
  WallTimer timer;
  FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(
      ctx, queries.size() * training.num_rows() * sizeof(double)));
  std::vector<Status> slot_errors(queries.size());
  FEAT_ASSIGN_OR_RETURN(std::vector<PlannedCandidate> planned,
                        Prepare(queries, &training, relevant,
                                /*for_grouped_result=*/false, ctx,
                                &slot_errors));
  prepare_seconds_ = timer.Seconds();

  timer.Restart();
  std::vector<CandidateResult> out(queries.size());
  // Slots are disjoint: each task writes only its own index, so recording a
  // per-candidate kernel failure is race-free on the pool.
  auto run_one = [&](size_t i) {
    if (!slot_errors[i].ok()) return;
    Status injected = FaultPoint("exec.kernel");
    if (!injected.ok()) {
      slot_errors[i] = std::move(injected);
      return;
    }
    out[i].values = ops_->compute_feature(planned[i]);
  };
  if (pool_ != nullptr) {
    FEAT_RETURN_NOT_OK(pool_->ParallelFor(planned.size(), run_one, 0, ctx));
  } else {
    for (size_t i = 0; i < planned.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      run_one(i);
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i].status = std::move(slot_errors[i]);
  }
  aggregate_seconds_ = timer.Seconds();
  return out;
}

Result<ServingPlan> QueryPlanner::CompileServingPlan(
    const std::vector<AggQuery>& queries, const Table& relevant,
    const ExecContext* ctx) {
  ServingPlan plan;
  plan.relevant = &relevant;
  plan.kernel_backend = kernel_backend_;
  if (ResolvedMorselRows() != 0) {
    // Morsel mode freezes the per-group values at compile time: the relevant
    // table is streamed once under the memory bound, and serving keeps only
    // the per-group features plus the key-map-only indexes (owned by the
    // plan — never published into the store, whose consumers expect per-row
    // ids). Execution degenerates to per-batch map + scatter.
    ops_ = &ResolveKernelOps(kernel_backend_);
    MorselOptions options;
    options.morsel_rows = ResolvedMorselRows();
    options.prefetch = morsel_prefetch_;
    options.pool = pool_;
    options.ops = ops_;
    options.ctx = ctx;
    FEAT_ASSIGN_OR_RETURN(MorselResult streamed,
                          ExecuteMorsels(queries, relevant, options));
    morsel_stats_ = streamed.stats;
    plan_stats_ = PlanStats{};
    plan_stats_.candidates = queries.size();
    plan_stats_.morsels = streamed.stats.morsels;
    plan.morsel_streamed = true;
    plan.per_group_features = std::move(streamed.per_group);
    plan.owned_indexes = std::move(streamed.group_indexes);
    plan.candidate_group = std::move(streamed.candidate_group);
    plan.group_indexes.reserve(plan.owned_indexes.size());
    for (const auto& index : plan.owned_indexes) {
      plan.group_indexes.push_back(index.get());
    }
    return plan;
  }
  morsel_stats_ = MorselExecStats{};
  store_.BeginEpoch();
  FEAT_ASSIGN_OR_RETURN(plan.candidates,
                        Prepare(queries, /*training=*/nullptr, relevant,
                                /*for_grouped_result=*/false, ctx));
  std::unordered_map<const GroupIndex*, size_t> distinct;
  plan.candidate_group.reserve(plan.candidates.size());
  for (const PlannedCandidate& p : plan.candidates) {
    auto [it, inserted] = distinct.emplace(p.index, plan.group_indexes.size());
    if (inserted) plan.group_indexes.push_back(p.index);
    plan.candidate_group.push_back(it->second);
  }
  return plan;
}

Result<std::vector<std::vector<double>>> ExecuteServingPlan(
    const ServingPlan& plan, const Table& batch, ThreadPool* pool,
    const ExecContext* ctx) {
  if (plan.relevant == nullptr) {
    return Status::InvalidArgument("serving plan was never compiled");
  }
  if (plan.morsel_streamed) {
    // Per-group values were frozen at compile time; execution is the map +
    // scatter tail only. Still const over the plan — concurrent calls share
    // the frozen vectors read-only.
    FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(
        ctx,
        plan.per_group_features.size() * batch.num_rows() * sizeof(double)));
    std::vector<std::vector<uint32_t>> train_maps;
    train_maps.reserve(plan.group_indexes.size());
    for (const GroupIndex* index : plan.group_indexes) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      FEAT_RETURN_NOT_OK(FaultPoint("prepare.train_map"));
      FEAT_ASSIGN_OR_RETURN(std::vector<uint32_t> map,
                            index->MapTrainingRows(batch, *plan.relevant));
      train_maps.push_back(std::move(map));
    }
    std::vector<std::vector<double>> out(plan.per_group_features.size());
    std::vector<Status> scatter_errors(out.size());
    auto scatter_one = [&](size_t i) {
      scatter_errors[i] = FaultPoint("exec.kernel");
      if (!scatter_errors[i].ok()) return;
      out[i] = ScatterPerGroup(plan.per_group_features[i],
                               train_maps[plan.candidate_group[i]]);
    };
    if (pool != nullptr) {
      FEAT_RETURN_NOT_OK(pool->ParallelFor(out.size(), scatter_one, 0, ctx));
    } else {
      for (size_t i = 0; i < out.size(); ++i) {
        FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
        scatter_one(i);
      }
    }
    for (const Status& s : scatter_errors) FEAT_RETURN_NOT_OK(s);
    return out;
  }
  FEAT_RETURN_NOT_OK(ExecContext::ChargeFor(
      ctx, plan.candidates.size() * batch.num_rows() * sizeof(double)));
  // The only batch-dependent artifacts: one training-row map per distinct
  // group index, built into call-local storage (the shared store is never
  // touched, which is what makes concurrent execution safe).
  std::vector<std::vector<uint32_t>> train_maps;
  train_maps.reserve(plan.group_indexes.size());
  for (const GroupIndex* index : plan.group_indexes) {
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
    FEAT_RETURN_NOT_OK(FaultPoint("prepare.train_map"));
    FEAT_ASSIGN_OR_RETURN(std::vector<uint32_t> map,
                          index->MapTrainingRows(batch, *plan.relevant));
    train_maps.push_back(std::move(map));
  }

  // Serving dispatches like the fit path: the plan's captured override
  // first, then FEATLIB_KERNEL_BACKEND / FeatAugConfig at execution time.
  const KernelOps& ops = ResolveKernelOps(plan.kernel_backend);
  std::vector<std::vector<double>> out(plan.candidates.size());
  std::vector<Status> kernel_errors(plan.candidates.size());
  auto run_one = [&](size_t i) {
    kernel_errors[i] = FaultPoint("exec.kernel");
    if (!kernel_errors[i].ok()) return;
    PlannedCandidate p = plan.candidates[i];
    p.train_map = &train_maps[plan.candidate_group[i]];
    out[i] = ops.compute_feature(p);
  };
  if (pool != nullptr) {
    FEAT_RETURN_NOT_OK(pool->ParallelFor(plan.candidates.size(), run_one, 0,
                                         ctx));
  } else {
    for (size_t i = 0; i < plan.candidates.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      run_one(i);
    }
  }
  for (const Status& s : kernel_errors) FEAT_RETURN_NOT_OK(s);
  return out;
}

Result<Table> QueryPlanner::ExecuteAggQuery(const AggQuery& q,
                                            const Table& relevant,
                                            const ExecContext* ctx) {
  store_.BeginEpoch();
  const std::vector<AggQuery> one(1, q);
  FEAT_ASSIGN_OR_RETURN(std::vector<PlannedCandidate> planned,
                        Prepare(one, /*training=*/nullptr, relevant,
                                /*for_grouped_result=*/true, ctx));
  const PlannedCandidate& p = planned[0];
  std::vector<uint32_t> first_selected;
  std::vector<double> per_group = ops_->aggregate_streaming(
      q.agg, *p.index, p.mask, p.view, &first_selected);

  // Groups are emitted in first-seen order among *filtered* rows with the
  // first matching row as representative; sorting surviving groups by their
  // first selected row reproduces both exactly.
  std::vector<uint32_t> survivors;
  survivors.reserve(first_selected.size());
  for (uint32_t g = 0; g < first_selected.size(); ++g) {
    if (first_selected[g] != kNoGroup) survivors.push_back(g);
  }
  std::sort(survivors.begin(), survivors.end(),
            [&](uint32_t a, uint32_t b) {
              return first_selected[a] < first_selected[b];
            });

  std::vector<uint32_t> representatives;
  representatives.reserve(survivors.size());
  Column feature(DataType::kDouble);
  feature.Reserve(survivors.size());
  for (uint32_t g : survivors) {
    representatives.push_back(first_selected[g]);
    if (std::isnan(per_group[g])) {
      feature.AppendNull();
    } else {
      feature.AppendDouble(per_group[g]);
    }
  }

  Table out;
  for (const auto& k : q.group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    FEAT_RETURN_NOT_OK(out.AddColumn(k, col->Take(representatives)));
  }
  FEAT_RETURN_NOT_OK(out.AddColumn("feature", std::move(feature)));
  return out;
}

}  // namespace featlib

#include "query/join.h"

#include <cstring>
#include <unordered_map>

#include "common/str_util.h"

namespace featlib {

namespace {

// Table-independent composite key: strings contribute length + bytes,
// numeric types their 8-byte pattern. Returns false when any key cell is
// NULL (SQL join semantics: NULL matches nothing).
bool EncodeKey(const std::vector<const Column*>& cols, size_t row,
               std::string* out) {
  out->clear();
  for (const Column* col : cols) {
    if (col->IsNull(row)) return false;
    switch (col->type()) {
      case DataType::kString: {
        const std::string& s = col->StringAt(row);
        const uint32_t len = static_cast<uint32_t>(s.size());
        out->append(reinterpret_cast<const char*>(&len), sizeof(len));
        out->append(s);
        break;
      }
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool: {
        const int64_t v = col->IntAt(row);
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        const double v = col->DoubleAt(row);
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
    }
  }
  return true;
}

struct JoinPlan {
  std::vector<const Column*> left_keys;
  std::vector<const Column*> right_keys;
  // Right columns carried into the output, with their output names.
  std::vector<std::pair<std::string, const Column*>> payload;
};

Result<JoinPlan> PlanJoin(const Table& left, const Table& right,
                          const std::vector<std::string>& keys,
                          const std::string& right_prefix) {
  if (keys.empty()) return Status::InvalidArgument("join needs key columns");
  JoinPlan plan;
  for (const auto& key : keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* l, left.GetColumn(key));
    FEAT_ASSIGN_OR_RETURN(const Column* r, right.GetColumn(key));
    const bool l_int = l->type() == DataType::kInt64 ||
                       l->type() == DataType::kDatetime ||
                       l->type() == DataType::kBool;
    const bool r_int = r->type() == DataType::kInt64 ||
                       r->type() == DataType::kDatetime ||
                       r->type() == DataType::kBool;
    const bool compatible = l->type() == r->type() || (l_int && r_int);
    if (!compatible) {
      return Status::InvalidArgument("join key type mismatch on " + key);
    }
    plan.left_keys.push_back(l);
    plan.right_keys.push_back(r);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const std::string& name = right.NameAt(c);
    bool is_key = false;
    for (const auto& key : keys) {
      if (key == name) is_key = true;
    }
    if (is_key) continue;
    std::string out_name = left.HasColumn(name) ? right_prefix + name : name;
    if (left.HasColumn(out_name)) {
      return Status::InvalidArgument("output column name collision: " + out_name);
    }
    plan.payload.emplace_back(std::move(out_name), &right.ColumnAt(c));
  }
  return plan;
}

}  // namespace

Result<Table> LeftJoinUnique(const Table& left, const Table& right,
                             const std::vector<std::string>& keys,
                             const std::string& right_prefix) {
  FEAT_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(left, right, keys, right_prefix));

  std::unordered_map<std::string, uint32_t> index;
  index.reserve(right.num_rows());
  std::string key;
  for (size_t row = 0; row < right.num_rows(); ++row) {
    if (!EncodeKey(plan.right_keys, row, &key)) continue;
    auto [it, inserted] = index.emplace(key, static_cast<uint32_t>(row));
    if (!inserted) {
      return Status::InvalidArgument(
          "LeftJoinUnique: duplicate right-side key (use InnerJoinExpand)");
    }
  }

  Table out = left;
  for (const auto& [name, col] : plan.payload) {
    Column joined(col->type());
    joined.Reserve(left.num_rows());
    for (size_t row = 0; row < left.num_rows(); ++row) {
      if (!EncodeKey(plan.left_keys, row, &key)) {
        joined.AppendNull();
        continue;
      }
      auto it = index.find(key);
      if (it == index.end()) {
        joined.AppendNull();
      } else {
        FEAT_RETURN_NOT_OK(joined.AppendValue(col->ValueAt(it->second)));
      }
    }
    FEAT_RETURN_NOT_OK(out.AddColumn(name, std::move(joined)));
  }
  return out;
}

Result<Table> InnerJoinExpand(const Table& left, const Table& right,
                              const std::vector<std::string>& keys,
                              const std::string& right_prefix) {
  FEAT_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(left, right, keys, right_prefix));

  std::unordered_map<std::string, std::vector<uint32_t>> index;
  std::string key;
  for (size_t row = 0; row < right.num_rows(); ++row) {
    if (!EncodeKey(plan.right_keys, row, &key)) continue;
    index[key].push_back(static_cast<uint32_t>(row));
  }

  std::vector<uint32_t> left_rows;
  std::vector<uint32_t> right_rows;
  for (size_t row = 0; row < left.num_rows(); ++row) {
    if (!EncodeKey(plan.left_keys, row, &key)) continue;
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (uint32_t r : it->second) {
      left_rows.push_back(static_cast<uint32_t>(row));
      right_rows.push_back(r);
    }
  }

  Table out = left.Take(left_rows);
  for (const auto& [name, col] : plan.payload) {
    FEAT_RETURN_NOT_OK(out.AddColumn(name, col->Take(right_rows)));
  }
  return out;
}

}  // namespace featlib

#pragma once

/// \file batch_executor.h
/// \brief Batched template executor for the candidate-evaluation hot loop.
///
/// FeatAug's search evaluates thousands of candidate queries (predicate
/// combo x agg function x agg attribute) that share the same one-to-many
/// join. BatchExecutor amortizes everything shareable across candidates:
///
///  1. a GroupIndex per group-key set (dense group ids; built once),
///  2. a cached selection bitmask per WHERE predicate, so a predicate
///     combination is an AND of cached masks instead of a fresh
///     compile-and-scan,
///  3. one-pass streaming aggregates (COUNT/SUM/MIN/MAX/AVG/VAR/STD
///     families) accumulated directly into per-group-id arrays; only
///     order-statistic / frequency aggregates (COUNT_DISTINCT, ENTROPY,
///     KURTOSIS, MODE, MAD, MEDIAN) fall back to materializing per-group
///     value vectors.
///
/// Outputs are bit-identical to the legacy per-candidate path (pinned by
/// tests/batch_executor_test.cc).
///
/// An instance is bound by content to one (training, relevant) table pair:
/// its caches key off group-key names and predicate operands, so feeding it
/// a different table with the same schema would silently reuse stale
/// structures. Callers that augment multiple tables create one executor per
/// pair (cheap — caches fill lazily).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "query/agg_query.h"
#include "query/group_index.h"
#include "table/table.h"

namespace featlib {

class BatchExecutor {
 public:
  BatchExecutor() = default;

  /// Feature column of `q` aligned to `training` (NaN where the entity has
  /// no qualifying rows). Equivalent to the legacy ComputeFeatureColumn but
  /// reuses the GroupIndex and predicate masks across calls.
  Result<std::vector<double>> ComputeFeatureColumn(const AggQuery& q,
                                                   const Table& training,
                                                   const Table& relevant);

  /// Evaluates N candidates in one call, returning N feature columns.
  /// Candidates sharing group keys reuse one GroupIndex; predicates repeated
  /// across candidates hit the mask cache.
  Result<std::vector<std::vector<double>>> EvaluateMany(
      const std::vector<AggQuery>& queries, const Table& training,
      const Table& relevant);

  /// Grouped result table of Def. 2 (key columns + "feature"), identical to
  /// the legacy ExecuteAggQuery including first-seen group order.
  Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant);

  /// \name Cache introspection (tests and benches).
  /// @{
  size_t num_group_index_builds() const { return group_builds_; }
  size_t num_mask_builds() const { return mask_builds_; }
  size_t num_materializations() const { return materializations_; }
  /// @}

 private:
  struct GroupEntry {
    GroupIndex index;
    bool has_train_map = false;
    std::vector<uint32_t> train_map;  // training row -> group id
  };

  /// Grouped non-null values of one (group-key set, predicate set, agg
  /// attribute) bucket, bucketed into one flat array in row order. Built at
  /// most once per bucket: candidates that vary only the agg function (the
  /// common shape of a template's pool) aggregate contiguous slices of the
  /// same flat array.
  struct MaterializedValues {
    std::vector<uint32_t> present;  // selected rows per group (incl. nulls)
    std::vector<size_t> offsets;    // group id -> slice bounds (size G+1)
    std::vector<double> flat;       // non-null selected values, row order
  };

  /// Single-candidate evaluation. With `prefer_materialized`, streaming
  /// aggregates also go through the bucket materialization (worth it when
  /// other candidates are known to share the bucket, as in EvaluateMany).
  Result<std::vector<double>> EvaluateOne(const AggQuery& q,
                                          const Table& training,
                                          const Table& relevant,
                                          bool prefer_materialized);

  Result<GroupEntry*> GetGroupEntry(const std::vector<std::string>& group_keys,
                                    const Table& relevant);

  /// Selection mask (1 byte per relevant row) for one non-trivial predicate.
  Result<const std::vector<uint8_t>*> GetPredicateMask(const Predicate& p,
                                                       const Table& relevant);

  /// ANDs the cached masks of `q`'s predicates into `combined_mask_`;
  /// returns nullptr when the query has no non-trivial predicate (all rows
  /// selected).
  Result<const uint8_t*> BuildSelectionMask(const AggQuery& q,
                                            const Table& relevant);

  /// The streaming kernel: per-group aggregate values for one candidate.
  /// Groups with no selected row get NaN. When `first_selected_row` is
  /// non-null it receives, per group, the first row index passing the
  /// filter (GroupIndex::kNoGroup when none does).
  Result<std::vector<double>> AggregatePerGroup(
      const AggQuery& q, const GroupIndex& index, const uint8_t* mask,
      const Table& relevant, std::vector<uint32_t>* first_selected_row);

  /// Numeric view of a column (NaN iff null), cached per attribute so the
  /// streaming kernels read contiguous doubles instead of dispatching on
  /// column type per row.
  Result<const std::vector<double>*> GetValueView(const std::string& attr,
                                                  const Table& relevant);

  Result<const MaterializedValues*> GetMaterialized(const std::string& bucket,
                                                    const GroupIndex& index,
                                                    const uint8_t* mask,
                                                    const std::string& agg_attr,
                                                    const Table& relevant);

  static std::vector<double> AggregateFromMaterialized(
      AggFunction fn, const MaterializedValues& m);

  std::unordered_map<std::string, GroupEntry> group_cache_;
  std::unordered_map<std::string, std::vector<uint8_t>> mask_cache_;
  size_t mask_cache_bytes_ = 0;
  std::unordered_map<std::string, std::vector<double>> view_cache_;
  std::unordered_map<std::string, MaterializedValues> mat_cache_;
  size_t mat_cache_bytes_ = 0;
  std::vector<uint8_t> combined_mask_;
  size_t group_builds_ = 0;
  size_t mask_builds_ = 0;
  size_t materializations_ = 0;
};

}  // namespace featlib

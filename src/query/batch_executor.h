#pragma once

/// \file batch_executor.h
/// \brief Batched template executor for the candidate-evaluation hot loop.
///
/// FeatAug's search evaluates thousands of candidate queries (predicate
/// combo x agg function x agg attribute) that share the same one-to-many
/// join. BatchExecutor amortizes everything shareable across candidates:
///
///  1. a GroupIndex per group-key set (dense group ids; built once),
///  2. a cached word-packed selection bitset per WHERE predicate (and per
///     predicate conjunction), so a predicate combination is a word-wise AND
///     of cached bitsets instead of a fresh compile-and-scan, and the
///     streaming kernels visit selected rows via word scan + countr_zero
///     instead of a per-row byte test,
///  3. one-pass streaming aggregates (COUNT/SUM/MIN/MAX/AVG/VAR/STD
///     families) accumulated directly into per-group-id arrays; only
///     order-statistic / frequency aggregates (COUNT_DISTINCT, ENTROPY,
///     KURTOSIS, MODE, MAD, MEDIAN) fall back to materializing per-group
///     value vectors.
///
/// EvaluateMany splits into a sequential *prepare* phase that builds/caches
/// every shared structure (single-writer caches, no locks) and a *fan-out*
/// phase that runs the per-candidate aggregate kernels — pure functions over
/// const inputs writing pre-sized output slots — on a ThreadPool. Results
/// are byte-identical at every thread count; 1 thread takes the exact
/// single-threaded code path (plain loop, no pool machinery).
///
/// Outputs are bit-identical to the legacy per-candidate path (pinned by
/// tests/batch_executor_test.cc and tests/executor_parallel_test.cc).
///
/// An instance is bound by content to one (training, relevant) table pair:
/// its caches key off group-key names and predicate operands, so feeding it
/// a different table with the same schema would silently reuse stale
/// structures. Callers that augment multiple tables create one executor per
/// pair (cheap — caches fill lazily).
///
/// Thread-compatibility: an instance may be used from one thread at a time
/// (its internal pool parallelism is self-contained); concurrent calls on
/// the same instance require external synchronization.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "query/agg_query.h"
#include "query/bitset.h"
#include "query/group_index.h"
#include "table/table.h"

namespace featlib {

class ThreadPool;

class BatchExecutor {
 public:
  BatchExecutor() = default;

  /// Pool used by EvaluateMany's fan-out phase. nullptr (the default) means
  /// serial evaluation. Not owned; must outlive the executor's use.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Feature column of `q` aligned to `training` (NaN where the entity has
  /// no qualifying rows). Equivalent to the legacy ComputeFeatureColumn but
  /// reuses the GroupIndex and predicate bitsets across calls.
  Result<std::vector<double>> ComputeFeatureColumn(const AggQuery& q,
                                                   const Table& training,
                                                   const Table& relevant);

  /// Evaluates N candidates in one call, returning N feature columns.
  /// Candidates sharing group keys reuse one GroupIndex; predicates repeated
  /// across candidates hit the bitset cache; the per-candidate kernels fan
  /// out over the configured ThreadPool.
  Result<std::vector<std::vector<double>>> EvaluateMany(
      const std::vector<AggQuery>& queries, const Table& training,
      const Table& relevant);

  /// Grouped result table of Def. 2 (key columns + "feature"), identical to
  /// the legacy ExecuteAggQuery including first-seen group order.
  Result<Table> ExecuteAggQuery(const AggQuery& q, const Table& relevant);

  /// \name Cache introspection (tests and benches).
  /// @{
  size_t num_group_index_builds() const { return group_builds_; }
  size_t num_mask_builds() const { return mask_builds_; }
  size_t num_materializations() const { return materializations_; }
  /// Cache entries evicted so far (mask + materialization caches). Entries
  /// referenced by the current batch are pinned and never evicted mid-batch.
  size_t num_evictions() const { return num_evictions_; }
  /// @}

  /// \name Cache caps (tests shrink them to force eviction).
  /// @{
  void set_mask_cache_cap_bytes(size_t cap) { mask_cache_cap_bytes_ = cap; }
  void set_mat_cache_cap_bytes(size_t cap) { mat_cache_cap_bytes_ = cap; }
  /// @}

  /// \name Phase timings of the last EvaluateMany call (bench reporting).
  /// @{
  double last_prepare_seconds() const { return prepare_seconds_; }
  double last_aggregate_seconds() const { return aggregate_seconds_; }
  /// @}

 private:
  struct GroupEntry {
    GroupIndex index;
    bool has_train_map = false;
    std::vector<uint32_t> train_map;  // training row -> group id
  };

  /// Grouped non-null values of one (group-key set, predicate set, agg
  /// attribute) bucket, bucketed into one flat array in row order. Built at
  /// most once per bucket: candidates that vary only the agg function (the
  /// common shape of a template's pool) aggregate contiguous slices of the
  /// same flat array.
  struct MaterializedValues {
    std::vector<uint32_t> present;  // selected rows per group (incl. nulls)
    std::vector<size_t> offsets;    // group id -> slice bounds (size G+1)
    std::vector<double> flat;       // non-null selected values, row order
  };

  struct MaskEntry {
    Bitset bits;
    uint64_t used_epoch = 0;  // == epoch_ => pinned by the current batch
  };

  struct MatEntry {
    MaterializedValues values;
    size_t bytes = 0;
    uint64_t used_epoch = 0;
  };

  /// Everything one candidate's kernel needs, resolved in the sequential
  /// prepare phase. All pointers are to cache-owned (pinned) or const data;
  /// the fan-out phase reads them without touching any cache.
  struct PlannedCandidate {
    const AggQuery* query = nullptr;
    const GroupEntry* entry = nullptr;
    const double* view = nullptr;             // null iff COUNT(*) (no attr)
    const Bitset* mask = nullptr;             // null = all rows selected
    const MaterializedValues* mat = nullptr;  // aggregate from slices if set
  };

  /// Sequential per-candidate preparation: validation, group index + train
  /// map, selection bitset, value view or shared-bucket materialization.
  /// `bucket_key` is the candidate's precomputed materialization-bucket key;
  /// `shared_bucket` requests materialization even for streaming aggregates
  /// (worth it when other candidates share the bucket, as in EvaluateMany).
  Result<PlannedCandidate> Prepare(const AggQuery& q, const Table& training,
                                   const Table& relevant,
                                   const std::string& bucket_key,
                                   bool shared_bucket);

  /// The pure fan-out kernel: per-group aggregation + scatter to training
  /// rows. Touches no executor state.
  static std::vector<double> ComputeColumn(const PlannedCandidate& p);

  Result<GroupEntry*> GetGroupEntry(const std::vector<std::string>& group_keys,
                                    const Table& relevant);

  /// Cached word-packed selection bitset for one non-trivial predicate.
  Result<const Bitset*> GetPredicateMask(const Predicate& p,
                                         const Table& relevant);

  /// Resolves `q`'s WHERE conjunction to a cached bitset: the predicate's
  /// own bitset for a single conjunct, a cached word-wise AND for longer
  /// conjunctions; nullptr when the query has no non-trivial predicate (all
  /// rows selected).
  Result<const Bitset*> BuildSelectionMask(const AggQuery& q,
                                           const Table& relevant);

  /// The streaming kernel: per-group aggregate values for one candidate,
  /// visiting selected rows in ascending order (word scan when `mask` is
  /// set). `view` is the candidate's numeric value view; null only for
  /// COUNT(*) candidates without an agg attribute, which then read no
  /// values at all. Groups with no selected row get NaN. When
  /// `first_selected_row` is non-null it receives, per group, the first row
  /// index passing the filter (GroupIndex::kNoGroup when none does).
  static std::vector<double> AggregateStreaming(
      AggFunction fn, const GroupIndex& index, const Bitset* mask,
      const double* view, std::vector<uint32_t>* first_selected_row);

  /// Numeric view of a column (NaN iff null), cached per attribute so the
  /// streaming kernels read contiguous doubles instead of dispatching on
  /// column type per row.
  Result<const std::vector<double>*> GetValueView(const std::string& attr,
                                                  const Table& relevant);

  Result<const MaterializedValues*> GetMaterialized(const std::string& bucket,
                                                    const GroupIndex& index,
                                                    const Bitset* mask,
                                                    const std::string& agg_attr,
                                                    const Table& relevant);

  static std::vector<double> AggregateFromMaterialized(
      AggFunction fn, const MaterializedValues& m);

  /// Evict unpinned (not used this epoch) mask-cache entries until
  /// `incoming` more bytes fit under the cap, or only pinned entries remain
  /// (the cache may then temporarily exceed the cap rather than thrash the
  /// running batch).
  void EvictMasksFor(size_t incoming);
  void EvictMaterializedFor(size_t incoming);

  std::unordered_map<std::string, GroupEntry> group_cache_;
  std::unordered_map<std::string, MaskEntry> mask_cache_;
  size_t mask_cache_bytes_ = 0;
  size_t mask_cache_cap_bytes_ = 64u << 20;
  std::unordered_map<std::string, std::vector<double>> view_cache_;
  std::unordered_map<std::string, MatEntry> mat_cache_;
  size_t mat_cache_bytes_ = 0;
  size_t mat_cache_cap_bytes_ = 128u << 20;

  /// Bumped at every public entry point; cache hits stamp their entry, so
  /// "used_epoch == epoch_" marks entries the in-flight batch depends on.
  uint64_t epoch_ = 0;

  ThreadPool* pool_ = nullptr;
  double prepare_seconds_ = 0.0;
  double aggregate_seconds_ = 0.0;

  size_t group_builds_ = 0;
  size_t mask_builds_ = 0;
  size_t materializations_ = 0;
  size_t num_evictions_ = 0;
};

}  // namespace featlib

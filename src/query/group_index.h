#pragma once

/// \file group_index.h
/// \brief Dense group-id index shared by every candidate query over the same
/// group-key set.
///
/// The candidate-evaluation hot loop evaluates thousands of query templates
/// (predicate combo x agg function x agg attribute) against the *same*
/// one-to-many join. The legacy executor re-encoded composite byte-string
/// keys and re-hashed every row for every candidate; a GroupIndex performs
/// that work exactly once per (relevant table, group-key set): each relevant
/// row gets a dense uint32 group id, and training rows are mapped to group
/// ids through the same canonical encoding. Candidates then aggregate into
/// flat per-group-id arrays with no hashing at all.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// Normalizes IEEE negative zero so `-0.0` and `0.0` — equal as doubles but
/// distinct as bit patterns — encode to the same composite key bytes.
inline double NormalizeSignedZero(double v) { return v == 0.0 ? 0.0 : v; }

/// \brief Immutable mapping from rows to dense group ids for one group-key
/// set over one relevant table.
///
/// Group ids are assigned in first-seen row order over all rows whose key
/// cells are non-NULL, which makes downstream group orderings deterministic.
class GroupIndex {
 public:
  /// Sentinel for rows that belong to no group (a NULL key cell, or — for
  /// training rows — a key value that never occurs in the relevant table).
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  /// Scans `relevant` once and assigns every row a group id.
  static Result<GroupIndex> Build(const Table& relevant,
                                  const std::vector<std::string>& group_keys);

  size_t num_groups() const { return num_groups_; }
  size_t num_rows() const { return row_groups_.size(); }
  const std::vector<std::string>& group_keys() const { return group_keys_; }

  /// Group id per relevant row (kNoGroup where the key has a NULL cell).
  const std::vector<uint32_t>& row_groups() const { return row_groups_; }

  /// Maps each training row to its group id via the relevant table's
  /// canonical encoding (string key cells are translated through the
  /// relevant table's dictionary). kNoGroup where the row cannot join.
  Result<std::vector<uint32_t>> MapTrainingRows(const Table& training,
                                                const Table& relevant) const;

 private:
  GroupIndex() = default;

  std::vector<std::string> group_keys_;
  std::vector<uint32_t> row_groups_;
  /// Canonical key bytes -> dense group id (kept for training-row mapping).
  std::unordered_map<std::string, uint32_t> group_of_key_;
  size_t num_groups_ = 0;
};

}  // namespace featlib

#pragma once

/// \file group_index.h
/// \brief Dense group-id index shared by every candidate query over the same
/// group-key set.
///
/// The candidate-evaluation hot loop evaluates thousands of query templates
/// (predicate combo x agg function x agg attribute) against the *same*
/// one-to-many join. The legacy executor re-encoded composite byte-string
/// keys and re-hashed every row for every candidate; a GroupIndex performs
/// that work exactly once per (relevant table, group-key set): each relevant
/// row gets a dense uint32 group id, and training rows are mapped to group
/// ids through the same canonical encoding. Candidates then aggregate into
/// flat per-group-id arrays with no hashing at all.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// Normalizes IEEE negative zero so `-0.0` and `0.0` — equal as doubles but
/// distinct as bit patterns — encode to the same composite key bytes.
inline double NormalizeSignedZero(double v) { return v == 0.0 ? 0.0 : v; }

/// \brief Immutable mapping from rows to dense group ids for one group-key
/// set over one relevant table.
///
/// Group ids are assigned in first-seen row order over all rows whose key
/// cells are non-NULL, which makes downstream group orderings deterministic.
class GroupIndex {
 public:
  /// Sentinel for rows that belong to no group (a NULL key cell, or — for
  /// training rows — a key value that never occurs in the relevant table).
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  /// Scans `relevant` once and assigns every row a group id.
  static Result<GroupIndex> Build(const Table& relevant,
                                  const std::vector<std::string>& group_keys);

  size_t num_groups() const { return num_groups_; }
  size_t num_rows() const { return row_groups_.size(); }
  const std::vector<std::string>& group_keys() const { return group_keys_; }

  /// Group id per relevant row (kNoGroup where the key has a NULL cell).
  const std::vector<uint32_t>& row_groups() const { return row_groups_; }

  /// Maps each training row to its group id via the relevant table's
  /// canonical encoding (string key cells are translated through the
  /// relevant table's dictionary). kNoGroup where the row cannot join.
  /// Needs only the key map — works on key-map-only indexes from
  /// GroupIndexBuilder::Finish just as on fully built ones.
  Result<std::vector<uint32_t>> MapTrainingRows(const Table& training,
                                                const Table& relevant) const;

  /// Actual heap footprint (row-group array + key-map nodes), the number
  /// charged against an ExecContext memory budget. Deterministic for a given
  /// build (walks the key map; O(num_groups)).
  size_t SizeBytes() const;

 private:
  friend class GroupIndexBuilder;

  GroupIndex() = default;

  std::vector<std::string> group_keys_;
  std::vector<uint32_t> row_groups_;
  /// Canonical key bytes -> dense group id (kept for training-row mapping).
  std::unordered_map<std::string, uint32_t> group_of_key_;
  size_t num_groups_ = 0;
};

/// \brief Incremental GroupIndex construction over row-range morsels of the
/// relevant table (see query/morsel.h).
///
/// AppendMorsel calls must cover the relevant table's morsels in ascending
/// row order; dense group ids are then assigned in exactly the first-seen
/// order GroupIndex::Build would produce over the whole table, which is what
/// keeps morsel-streamed per-group results byte-identical to the single-pass
/// path. Each call returns the morsel-local row→group mapping (the morsel's
/// slice of row_groups()) instead of retaining it, so the builder's memory
/// is bounded by the number of *groups*, never the number of rows.
///
/// Thread-safety: AppendMorsel mutates the key map and must be externally
/// serialized (the morsel pipeline runs builds one at a time); MapMorsel is
/// const and lookup-only, for re-streaming sweeps over a finished key space.
class GroupIndexBuilder {
 public:
  explicit GroupIndexBuilder(std::vector<std::string> group_keys)
      : group_keys_(std::move(group_keys)) {}

  /// Assigns (first-seen) group ids to one morsel's rows. `morsel` holds the
  /// morsel-local slice of the key columns; returned ids are indexed by
  /// morsel-local row.
  Result<std::vector<uint32_t>> AppendMorsel(const Table& morsel);

  /// Lookup-only mapping of one morsel's rows onto the already-built group
  /// space (second sweep of two-pass aggregates). Unknown keys map to
  /// GroupIndex::kNoGroup — with the same morsel sequence as the append
  /// sweep they cannot occur.
  Result<std::vector<uint32_t>> MapMorsel(const Table& morsel) const;

  size_t num_groups() const { return num_groups_; }

  /// Key-map heap bytes so far (same accounting as GroupIndex::SizeBytes).
  size_t SizeBytes() const;

  /// Moves the accumulated key map into a key-map-only GroupIndex:
  /// row_groups() is empty (per-row ids were streamed out by AppendMorsel),
  /// but MapTrainingRows and num_groups() work exactly as on a built index.
  /// The builder is consumed.
  GroupIndex Finish() &&;

 private:
  std::vector<std::string> group_keys_;
  std::unordered_map<std::string, uint32_t> group_of_key_;
  size_t num_groups_ = 0;
};

}  // namespace featlib

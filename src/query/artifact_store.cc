#include "query/artifact_store.h"

#include <utility>

namespace featlib {

ArtifactStore::GroupArtifact* ArtifactStore::FindGroup(const std::string& key) {
  auto it = group_shard_.find(key);
  return it == group_shard_.end() ? nullptr : &it->second;
}

const Bitset* ArtifactStore::FindMask(const std::string& key) {
  auto it = mask_shard_.find(key);
  if (it == mask_shard_.end()) return nullptr;
  it->second.used_epoch = epoch_;
  return &it->second.bits;
}

const std::vector<double>* ArtifactStore::FindView(const std::string& attr) {
  auto it = view_shard_.find(attr);
  return it == view_shard_.end() ? nullptr : &it->second;
}

const MaterializedValues* ArtifactStore::FindMaterialized(
    const std::string& key) {
  auto it = mat_shard_.find(key);
  if (it == mat_shard_.end()) return nullptr;
  it->second.used_epoch = epoch_;
  return &it->second.values;
}

ArtifactStore::GroupArtifact* ArtifactStore::PublishGroup(
    const std::string& key, GroupIndex index) {
  ++group_builds_;
  GroupArtifact artifact{std::move(index), false, {}};
  return &group_shard_.emplace(key, std::move(artifact)).first->second;
}

void ArtifactStore::PublishTrainMap(GroupArtifact* group,
                                    std::vector<uint32_t> train_map) {
  ++train_map_builds_;
  group->train_map = std::move(train_map);
  group->has_train_map = true;
}

const Bitset* ArtifactStore::PublishMask(const std::string& key, Bitset bits,
                                         bool is_conjunction) {
  if (is_conjunction) {
    ++conjunction_builds_;
  } else {
    ++mask_builds_;
  }
  EvictMasksFor(bits.SizeBytes());
  mask_bytes_ += bits.SizeBytes();
  MaskEntry entry{std::move(bits), epoch_};
  return &mask_shard_.emplace(key, std::move(entry)).first->second.bits;
}

const std::vector<double>* ArtifactStore::PublishView(
    const std::string& attr, std::vector<double> view) {
  ++view_builds_;
  return &view_shard_.emplace(attr, std::move(view)).first->second;
}

const MaterializedValues* ArtifactStore::PublishMaterialized(
    const std::string& key, MaterializedValues values) {
  ++materializations_;
  const size_t bytes = values.SizeBytes();
  EvictMaterializedFor(bytes);
  mat_bytes_ += bytes;
  MatEntry entry{std::move(values), bytes, epoch_};
  return &mat_shard_.emplace(key, std::move(entry)).first->second.values;
}

void ArtifactStore::EvictMasksFor(size_t incoming) {
  if (mask_bytes_ + incoming <= mask_cap_bytes_) return;
  // Evict only entries no candidate of the current batch referenced: the
  // mask pointers held by in-flight PlannedCandidates must stay valid, and
  // mass-clearing mid-batch would rebuild masks the very next candidate
  // needs (cache thrash). Range-predicate operands from the continuous
  // search space rarely repeat, so unpinned entries are cheap to drop.
  for (auto it = mask_shard_.begin(); it != mask_shard_.end();) {
    if (mask_bytes_ + incoming <= mask_cap_bytes_) return;
    if (it->second.used_epoch == epoch_) {
      ++it;
      continue;
    }
    mask_bytes_ -= it->second.bits.SizeBytes();
    it = mask_shard_.erase(it);
    ++num_evictions_;
  }
}

void ArtifactStore::EvictMaterializedFor(size_t incoming) {
  if (mat_bytes_ + incoming <= mat_cap_bytes_) return;
  for (auto it = mat_shard_.begin(); it != mat_shard_.end();) {
    if (mat_bytes_ + incoming <= mat_cap_bytes_) return;
    if (it->second.used_epoch == epoch_) {
      ++it;
      continue;
    }
    mat_bytes_ -= it->second.bytes;
    it = mat_shard_.erase(it);
    ++num_evictions_;
  }
}

}  // namespace featlib

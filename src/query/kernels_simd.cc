/// \file kernels_simd.cc
/// \brief The vectorized kernel backend (KernelBackend::kSimd).
///
/// Every function here must produce output byte-identical to its scalar
/// counterpart in kernels.cc — backend choice is a performance knob, never a
/// semantics knob (see kernel_dispatch.h). That constraint dictates what is
/// vectorized and how:
///
///  - **Floating-point reductions keep scalar order.** SUM/AVG/VAR are
///    sequential dependence chains whose result depends on accumulation
///    order; re-associating them into vector lanes would change low bits.
///    They are accelerated only by cheaper *iteration* (below), never by
///    reordered arithmetic.
///  - **Mask iteration is run-decoded.** The streaming kernels' per-row cost
///    is dominated by per-bit scanning (countr_zero + clear-lowest) and the
///    grouped scatter, not arithmetic. Decoding each mask word into runs of
///    consecutive selected rows once turns dense masks into plain contiguous
///    loops — visiting exactly the same rows in exactly the same order.
///  - **Order-independent kernels vectorize fully**: MIN/MAX over
///    materialized slices (lane-parallel min/max; equal doubles are
///    bit-identical except ±0.0, fixed up by a first-occurrence rescan),
///    predicate compare + movemask for the prepare phase's selection masks,
///    and the masked-gather scatter through the training-row map.
///
/// ISA paths are selected at runtime (DetectedSimdLevel): AVX2 functions
/// carry `__attribute__((target("avx2")))` so this translation unit itself
/// is compiled for the baseline ISA and never faults on older CPUs; NEON
/// paths compile only on aarch64. Without any vector ISA, the run-decoded
/// loops alone remain — still bit-identical, modestly faster than per-bit
/// scanning.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "query/aggregate.h"
#include "query/kernel_dispatch.h"

#if !defined(FEATLIB_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define FEATLIB_HAVE_AVX2_PATH 1
#include <immintrin.h>
#endif
#if !defined(FEATLIB_DISABLE_SIMD) && defined(__aarch64__)
#define FEATLIB_HAVE_NEON_PATH 1
#include <arm_neon.h>
#endif

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

double Nan() { return std::nan(""); }

// ---------------------------------------------------------------------------
// Run-decoded mask iteration
// ---------------------------------------------------------------------------

/// Invokes `body(begin, end)` for every maximal run of consecutive selected
/// rows, in ascending order. Decodes each 64-bit mask word with
/// countr_zero/countr_one and merges runs that continue across word
/// boundaries, so a dense mask costs two bit-scans per word instead of one
/// per row. A null mask is the full range [0, n).
template <typename Body>
void ForEachSelectedRun(const Bitset* mask, size_t n, Body&& body) {
  if (mask == nullptr) {
    if (n > 0) body(size_t{0}, n);
    return;
  }
  const uint64_t* words = mask->words();
  const size_t n_words = mask->num_words();
  size_t run_begin = 0;
  size_t run_end = 0;
  for (size_t w = 0; w < n_words; ++w) {
    uint64_t bits = words[w];
    const size_t base = w << 6;
    while (bits != 0) {
      const int start = std::countr_zero(bits);
      const int len = std::countr_one(bits >> start);
      const size_t b = base + static_cast<size_t>(start);
      const size_t e = b + static_cast<size_t>(len);
      if (b == run_end && run_end != run_begin) {
        run_end = e;  // continues the previous run across the word boundary
      } else {
        if (run_end != run_begin) body(run_begin, run_end);
        run_begin = b;
        run_end = e;
      }
      if (start + len >= 64) break;
      bits &= ~uint64_t{0} << (start + len);
    }
  }
  if (run_end != run_begin) body(run_begin, run_end);
}

/// Run-decoded replacement for Bitset::ForEachSetBit / the all-rows loop:
/// same rows, same ascending order, contiguous inner loops.
template <typename OnRow>
void StreamSelected(const Bitset* mask, size_t n, OnRow&& on_row) {
  ForEachSelectedRun(mask, n, [&](size_t begin, size_t end) {
    for (size_t row = begin; row < end; ++row) on_row(row);
  });
}

/// Splits each selected run into maximal segments of consecutive rows that
/// share one group id, skipping kNoGroup segments. Log-style relevant
/// tables cluster rows by entity, so segments span many rows: the grouped
/// accumulators (present / sum / best per group) can be loaded into
/// registers once per segment instead of once per row, while every
/// accumulation still happens in the same ascending row order — the
/// bit-identity contract is untouched.
template <typename Body>
void ForEachGroupSegment(const Bitset* mask, const uint32_t* groups, size_t n,
                         Body&& body) {
  ForEachSelectedRun(mask, n, [&](size_t begin, size_t end) {
    size_t b = begin;
    while (b < end) {
      const uint32_t g = groups[b];
      size_t e = b + 1;
      while (e < end && groups[e] == g) ++e;
      if (g != kNoGroup) body(g, b, e);
      b = e;
    }
  });
}

/// True when consecutive rows mostly share a group id (log-style relevant
/// tables cluster rows by entity): segment decoding then amortizes
/// accumulator loads over whole segments. Random row->group layouts (coarse
/// attributes like a weekday key) degrade segments to length ~1, where the
/// scan is pure overhead — the probe keeps the plain per-row loop there.
/// Layout is a global property of the index, so a prefix sample suffices.
bool GroupsAreClustered(const uint32_t* groups, size_t n) {
  const size_t sample = std::min(n, size_t{4096});
  if (sample < 8) return false;
  size_t changes = 0;
  for (size_t r = 1; r < sample; ++r) changes += groups[r] != groups[r - 1];
  return changes * 4 <= sample;  // average segment length >= ~4
}

/// Group-constant spans: segmented when the index layout rewards it,
/// otherwise per-row spans of length 1. Either way the body sees the same
/// rows in the same ascending order.
template <typename Body>
void ForEachGroupSpan(const Bitset* mask, const uint32_t* groups, size_t n,
                      bool clustered, Body&& body) {
  if (clustered) {
    ForEachGroupSegment(mask, groups, n, body);
    return;
  }
  StreamSelected(mask, n, [&](size_t row) {
    const uint32_t g = groups[row];
    if (g != kNoGroup) body(g, row, row + 1);
  });
}

// ---------------------------------------------------------------------------
// Slice MIN/MAX (order-independent; vector lanes + ±0.0 fix-up)
// ---------------------------------------------------------------------------

using SliceFn = double (*)(const double*, size_t);

double SliceMinScalar(const double* p, size_t n) {
  return n == 0 ? Nan() : *std::min_element(p, p + n);
}

double SliceMaxScalar(const double* p, size_t n) {
  return n == 0 ? Nan() : *std::max_element(p, p + n);
}

/// Equal doubles are bit-identical except ±0.0, whose sign a lane-parallel
/// reduction may pick arbitrarily while the scalar oracle (min_element /
/// max_element, strict comparison) keeps the first occurrence. When the
/// vector result is a zero, return the slice's first zero instead.
double FirstZeroOf(const double* p, size_t n, double fallback) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == 0.0) return p[i];
  }
  return fallback;
}

#if defined(FEATLIB_HAVE_AVX2_PATH)

__attribute__((target("avx2"))) double SliceMinAvx2(const double* p,
                                                    size_t n) {
  if (n < 16) return SliceMinScalar(p, n);
  // Materialized slices contain no NaN (nulls are dropped at build time),
  // so min_pd's NaN asymmetry cannot bite; only ±0.0 ties need fixing.
  __m256d acc0 = _mm256_loadu_pd(p);
  __m256d acc1 = _mm256_loadu_pd(p + 4);
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_min_pd(acc0, _mm256_loadu_pd(p + i));
    acc1 = _mm256_min_pd(acc1, _mm256_loadu_pd(p + i + 4));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_min_pd(acc0, acc1));
  double best = lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (lanes[k] < best) best = lanes[k];
  }
  for (; i < n; ++i) {
    if (p[i] < best) best = p[i];
  }
  return best == 0.0 ? FirstZeroOf(p, n, best) : best;
}

__attribute__((target("avx2"))) double SliceMaxAvx2(const double* p,
                                                    size_t n) {
  if (n < 16) return SliceMaxScalar(p, n);
  __m256d acc0 = _mm256_loadu_pd(p);
  __m256d acc1 = _mm256_loadu_pd(p + 4);
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_max_pd(acc0, _mm256_loadu_pd(p + i));
    acc1 = _mm256_max_pd(acc1, _mm256_loadu_pd(p + i + 4));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_max_pd(acc0, acc1));
  double best = lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (lanes[k] > best) best = lanes[k];
  }
  for (; i < n; ++i) {
    if (p[i] > best) best = p[i];
  }
  return best == 0.0 ? FirstZeroOf(p, n, best) : best;
}

#endif  // FEATLIB_HAVE_AVX2_PATH

#if defined(FEATLIB_HAVE_NEON_PATH)

double SliceMinNeon(const double* p, size_t n) {
  if (n < 8) return SliceMinScalar(p, n);
  float64x2_t acc0 = vld1q_f64(p);
  float64x2_t acc1 = vld1q_f64(p + 2);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc0 = vminq_f64(acc0, vld1q_f64(p + i));
    acc1 = vminq_f64(acc1, vld1q_f64(p + i + 2));
  }
  const float64x2_t acc = vminq_f64(acc0, acc1);
  double best = vgetq_lane_f64(acc, 0);
  const double hi = vgetq_lane_f64(acc, 1);
  if (hi < best) best = hi;
  for (; i < n; ++i) {
    if (p[i] < best) best = p[i];
  }
  return best == 0.0 ? FirstZeroOf(p, n, best) : best;
}

double SliceMaxNeon(const double* p, size_t n) {
  if (n < 8) return SliceMaxScalar(p, n);
  float64x2_t acc0 = vld1q_f64(p);
  float64x2_t acc1 = vld1q_f64(p + 2);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc0 = vmaxq_f64(acc0, vld1q_f64(p + i));
    acc1 = vmaxq_f64(acc1, vld1q_f64(p + i + 2));
  }
  const float64x2_t acc = vmaxq_f64(acc0, acc1);
  double best = vgetq_lane_f64(acc, 0);
  const double hi = vgetq_lane_f64(acc, 1);
  if (hi > best) best = hi;
  for (; i < n; ++i) {
    if (p[i] > best) best = p[i];
  }
  return best == 0.0 ? FirstZeroOf(p, n, best) : best;
}

#endif  // FEATLIB_HAVE_NEON_PATH

SliceFn SliceMinFn() {
  static const SliceFn fn = []() -> SliceFn {
    const SimdLevel level = DetectedSimdLevel();
    (void)level;
#if defined(FEATLIB_HAVE_AVX2_PATH)
    if (level == SimdLevel::kAvx2) return &SliceMinAvx2;
#endif
#if defined(FEATLIB_HAVE_NEON_PATH)
    if (level == SimdLevel::kNeon) return &SliceMinNeon;
#endif
    return &SliceMinScalar;
  }();
  return fn;
}

SliceFn SliceMaxFn() {
  static const SliceFn fn = []() -> SliceFn {
    const SimdLevel level = DetectedSimdLevel();
    (void)level;
#if defined(FEATLIB_HAVE_AVX2_PATH)
    if (level == SimdLevel::kAvx2) return &SliceMaxAvx2;
#endif
#if defined(FEATLIB_HAVE_NEON_PATH)
    if (level == SimdLevel::kNeon) return &SliceMaxNeon;
#endif
    return &SliceMaxScalar;
  }();
  return fn;
}

// ---------------------------------------------------------------------------
// Kernel entry points
// ---------------------------------------------------------------------------

MaterializedValues SimdBuildMaterializedValues(const GroupIndex& index,
                                               const Bitset* mask,
                                               const double* view) {
  // The scalar builder's exact two-pass algorithm over run-decoded
  // iteration: same rows, same order, byte-identical output.
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();
  const uint32_t* groups = row_groups.data();

  MaterializedValues m;
  m.present.assign(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);
  StreamSelected(mask, n, [&](size_t row) {
    const uint32_t g = groups[row];
    if (g == kNoGroup) return;
    ++m.present[g];
    if (!std::isnan(view[row])) ++value_count[g];
  });
  m.offsets.assign(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    m.offsets[g + 1] = m.offsets[g] + value_count[g];
  }
  m.flat.resize(m.offsets[n_groups]);
  std::vector<size_t> cursor(m.offsets.begin(), m.offsets.end() - 1);
  StreamSelected(mask, n, [&](size_t row) {
    const uint32_t g = groups[row];
    if (g == kNoGroup) return;
    const double v = view[row];
    if (std::isnan(v)) return;
    m.flat[cursor[g]++] = v;
  });
  return m;
}

std::vector<double> SimdAggregateFromMaterialized(AggFunction fn,
                                                  const MaterializedValues& m) {
  const size_t n_groups = m.present.size();
  std::vector<double> feature(n_groups, Nan());
  const double* flat = m.flat.data();
  if (fn == AggFunction::kMin || fn == AggFunction::kMax) {
    const SliceFn slice = fn == AggFunction::kMin ? SliceMinFn() : SliceMaxFn();
    for (size_t g = 0; g < n_groups; ++g) {
      if (m.present[g] == 0) continue;
      feature[g] =
          slice(flat + m.offsets[g], m.offsets[g + 1] - m.offsets[g]);
    }
    return feature;
  }
  // All other aggregates are order-sensitive or cold; delegate each slice to
  // the shared scalar ComputeAggregate, exactly as the scalar backend does.
  for (size_t g = 0; g < n_groups; ++g) {
    if (m.present[g] == 0) continue;
    feature[g] = ComputeAggregate(fn, flat + m.offsets[g],
                                  m.offsets[g + 1] - m.offsets[g]);
  }
  return feature;
}

std::vector<double> SimdAggregateStreaming(
    AggFunction fn, const GroupIndex& index, const Bitset* mask,
    const double* view, std::vector<uint32_t>* first_selected_row) {
  // Mirrors the scalar kernel's accumulation exactly; the changes are
  // run-decoded iteration in place of the per-bit scan and group-constant
  // segment processing: the grouped scatter (present[g] / sum[g] updates
  // through the row->group indirection) has no profitable vector form on
  // AVX2 — there is no scatter instruction — and SUM/AVG/VAR arithmetic
  // must keep scalar order anyway, but a segment's accumulators can live in
  // registers for the whole segment. Same values, same order, byte-identical
  // results.
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();
  const uint32_t* groups = row_groups.data();
  std::vector<double> feature(n_groups, Nan());
  if (first_selected_row) first_selected_row->assign(n_groups, kNoGroup);
  if (n_groups == 0) return feature;
  if (mask != nullptr && mask->Count() == 0) return feature;

  std::vector<uint32_t> present(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);

  // Presence / first-selected-row bookkeeping per span, then the
  // aggregate-specific value loop. `on_segment(g, b, e)` sees only non-NaN
  // handling; it runs iff a value view exists.
  const bool clustered = GroupsAreClustered(groups, n);
  auto stream = [&](auto&& on_segment) {
    ForEachGroupSpan(mask, groups, n, clustered,
                     [&](uint32_t g, size_t b, size_t e) {
      if (present[g] == 0 && first_selected_row) {
        (*first_selected_row)[g] = static_cast<uint32_t>(b);
      }
      present[g] += static_cast<uint32_t>(e - b);
      if (view == nullptr) return;
      on_segment(g, b, e);
    });
  };

  switch (fn) {
    case AggFunction::kCount: {
      stream([&](uint32_t g, size_t b, size_t e) {
        uint32_t vc = 0;
        for (size_t row = b; row < e; ++row) vc += !std::isnan(view[row]);
        value_count[g] += vc;
      });
      if (view == nullptr) {
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(present[g]);
        }
      } else {
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(value_count[g]);
        }
      }
      return feature;
    }
    case AggFunction::kSum:
    case AggFunction::kAvg: {
      std::vector<double> sum(n_groups, 0.0);
      stream([&](uint32_t g, size_t b, size_t e) {
        double acc = sum[g];
        uint32_t vc = value_count[g];
        for (size_t row = b; row < e; ++row) {
          const double v = view[row];
          if (std::isnan(v)) continue;  // null cell
          ++vc;
          acc += v;
        }
        sum[g] = acc;
        value_count[g] = vc;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] == 0 || value_count[g] == 0) continue;
        feature[g] = fn == AggFunction::kSum
                         ? sum[g]
                         : sum[g] / static_cast<double>(value_count[g]);
      }
      return feature;
    }
    case AggFunction::kMin:
    case AggFunction::kMax: {
      const bool is_min = fn == AggFunction::kMin;
      std::vector<double> best(n_groups, 0.0);
      stream([&](uint32_t g, size_t b, size_t e) {
        double bst = best[g];
        uint32_t vc = value_count[g];
        for (size_t row = b; row < e; ++row) {
          const double v = view[row];
          if (std::isnan(v)) continue;  // null cell
          ++vc;
          if (vc == 1 || (is_min ? v < bst : v > bst)) bst = v;
        }
        best[g] = bst;
        value_count[g] = vc;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] > 0 && value_count[g] > 0) feature[g] = best[g];
      }
      return feature;
    }
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample: {
      const bool sample =
          fn == AggFunction::kVarSample || fn == AggFunction::kStdSample;
      const bool std_dev =
          fn == AggFunction::kStd || fn == AggFunction::kStdSample;
      std::vector<double> mean(n_groups, 0.0);
      stream([&](uint32_t g, size_t b, size_t e) {
        double acc = mean[g];
        uint32_t vc = value_count[g];
        for (size_t row = b; row < e; ++row) {
          const double v = view[row];
          if (std::isnan(v)) continue;  // null cell
          ++vc;
          acc += v;
        }
        mean[g] = acc;
        value_count[g] = vc;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (value_count[g] > 0) mean[g] /= static_cast<double>(value_count[g]);
      }
      std::vector<double> ss(n_groups, 0.0);
      ForEachGroupSpan(mask, groups, n, clustered,
                       [&](uint32_t g, size_t b, size_t e) {
        const double m_g = mean[g];
        double acc = ss[g];
        for (size_t row = b; row < e; ++row) {
          const double v = view[row];
          if (std::isnan(v)) continue;
          const double d = v - m_g;
          acc += d * d;
        }
        ss[g] = acc;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        const size_t cnt = value_count[g];
        if (present[g] == 0 || cnt == 0 || (sample && cnt < 2)) continue;
        const double denom =
            sample ? static_cast<double>(cnt - 1) : static_cast<double>(cnt);
        const double var = ss[g] / denom;
        feature[g] = std_dev ? std::sqrt(var) : var;
      }
      return feature;
    }
    default:
      break;
  }

  // Order-statistic / frequency fallback, as in the scalar kernel.
  if (first_selected_row) stream([](uint32_t, size_t, size_t) {});
  return SimdAggregateFromMaterialized(
      fn, SimdBuildMaterializedValues(index, mask, view));
}

// ---------------------------------------------------------------------------
// Training-row scatter (gather through the row->group map)
// ---------------------------------------------------------------------------

using ScatterFn = void (*)(const double*, const uint32_t*, size_t, double*);

void ScatterScalar(const double* per_group, const uint32_t* train_map,
                   size_t n, double* out) {
  for (size_t row = 0; row < n; ++row) {
    const uint32_t g = train_map[row];
    if (g != kNoGroup) out[row] = per_group[g];
  }
}

#if defined(FEATLIB_HAVE_AVX2_PATH)

__attribute__((target("avx2"))) void ScatterAvx2(const double* per_group,
                                                 const uint32_t* train_map,
                                                 size_t n, double* out) {
  // kNoGroup == 0xFFFFFFFF == signed -1: compare picks the mask, and masked
  // gather lanes are architecturally never dereferenced, so the sentinel
  // index is safe. `out` arrives NaN-filled; masked lanes keep it.
  const __m128i no_group = _mm_set1_epi32(-1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(train_map + i));
    const __m128i valid32 = _mm_xor_si128(_mm_cmpeq_epi32(idx, no_group),
                                          no_group);  // all-ones where mapped
    const __m256d lane_mask =
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(valid32));
    const __m256d gathered = _mm256_mask_i32gather_pd(
        _mm256_loadu_pd(out + i), per_group, idx, lane_mask, 8);
    _mm256_storeu_pd(out + i, gathered);
  }
  for (; i < n; ++i) {
    const uint32_t g = train_map[i];
    if (g != kNoGroup) out[i] = per_group[g];
  }
}

#endif  // FEATLIB_HAVE_AVX2_PATH

ScatterFn ScatterPerGroupFn() {
  static const ScatterFn fn = []() -> ScatterFn {
#if defined(FEATLIB_HAVE_AVX2_PATH)
    if (DetectedSimdLevel() == SimdLevel::kAvx2) return &ScatterAvx2;
#endif
    return &ScatterScalar;
  }();
  return fn;
}

std::vector<double> SimdComputeFeatureKernel(const PlannedCandidate& p) {
  const std::vector<double> per_group =
      p.mat != nullptr
          ? SimdAggregateFromMaterialized(p.query->agg, *p.mat)
          : SimdAggregateStreaming(p.query->agg, *p.index, p.mask, p.view,
                                   nullptr);
  const std::vector<uint32_t>& train_map = *p.train_map;
  std::vector<double> out(train_map.size(), Nan());
  ScatterPerGroupFn()(per_group.data(), train_map.data(), train_map.size(),
                      out.data());
  return out;
}

// ---------------------------------------------------------------------------
// Predicate-to-mask evaluation (prepare phase)
// ---------------------------------------------------------------------------

/// One conjunct of CompiledFilter::Matches, verbatim.
bool MatchesOne(const CompiledFilter::BoundPredicate& b, size_t row) {
  if (b.column->IsNull(row)) return false;
  if (b.kind == Predicate::Kind::kEquals) {
    if (b.is_string) return b.code >= 0 && b.column->CodeAt(row) == b.code;
    return b.column->AsDouble(row) == b.equals_numeric;
  }
  const double v = b.column->AsDouble(row);
  if (b.has_lo && v < b.lo) return false;
  if (b.has_hi && v > b.hi) return false;
  return true;
}

/// Evaluates one conjunct into the word array per-row: assigns words on the
/// first conjunct, ANDs on the rest. The fallback for column types without
/// a vector path, and the tail-word finisher for the vector builders.
void ScalarPredicateWords(const CompiledFilter::BoundPredicate& b,
                          size_t row_begin, size_t n, uint64_t* words,
                          bool first) {
  const size_t w_begin = row_begin >> 6;
  const size_t n_words = (n + 63) >> 6;
  for (size_t w = w_begin; w < n_words; ++w) {
    const size_t base = w << 6;
    const size_t end = std::min(n, base + 64);
    uint64_t m = 0;
    for (size_t row = base; row < end; ++row) {
      m |= uint64_t{MatchesOne(b, row)} << (row - base);
    }
    if (first) {
      words[w] = m;
    } else {
      words[w] &= m;
    }
  }
}

#if defined(FEATLIB_HAVE_AVX2_PATH)

/// Compare + movemask over a kDouble column: 16 × 4-lane compares fill one
/// 64-row mask word; the validity bytes fold in via cmpeq-with-zero +
/// byte-movemask. Predicates use NLT/NGT unordered compares so the result
/// bit equals the scalar `!(v < lo) && !(v > hi)` for every bit pattern,
/// NaN included.
__attribute__((target("avx2"))) void Avx2DoublePredWords(
    const CompiledFilter::BoundPredicate& b, size_t n, uint64_t* words,
    bool first) {
  const double* vals = b.column->raw_doubles();
  const uint8_t* valid = b.column->raw_validity();
  const bool is_eq = b.kind == Predicate::Kind::kEquals;
  const __m256d lo = _mm256_set1_pd(b.lo);
  const __m256d hi = _mm256_set1_pd(b.hi);
  const __m256d eq = _mm256_set1_pd(b.equals_numeric);
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256i zero = _mm256_setzero_si256();
  const size_t n_full = n >> 6;
  for (size_t w = 0; w < n_full; ++w) {
    const size_t base = w << 6;
    uint64_t m = 0;
    for (size_t k = 0; k < 64; k += 4) {
      const __m256d v = _mm256_loadu_pd(vals + base + k);
      __m256d ok;
      if (is_eq) {
        ok = _mm256_cmp_pd(v, eq, _CMP_EQ_OQ);
      } else {
        ok = all;
        if (b.has_lo) {
          ok = _mm256_and_pd(ok, _mm256_cmp_pd(v, lo, _CMP_NLT_UQ));
        }
        if (b.has_hi) {
          ok = _mm256_and_pd(ok, _mm256_cmp_pd(v, hi, _CMP_NGT_UQ));
        }
      }
      m |= static_cast<uint64_t>(
               static_cast<uint32_t>(_mm256_movemask_pd(ok)))
           << k;
    }
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base + 32));
    const uint64_t null_lo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, zero)));
    const uint64_t null_hi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(vb, zero)));
    m &= ~(null_lo | (null_hi << 32));
    if (first) {
      words[w] = m;
    } else {
      words[w] &= m;
    }
  }
  ScalarPredicateWords(b, n_full << 6, n, words, first);
}

/// Exact 4-lane int64 -> double conversion (full 64-bit range). Splits each
/// lane into low-32 and high-32 halves, each biased into the mantissa of a
/// magic-exponent double, and folds the biases out with one subtract and one
/// add; only the final add rounds, so the result equals
/// `static_cast<double>(int64_t)` bit for bit under the default
/// round-to-nearest mode — the bit-identity contract for the int-backed
/// numeric views.
__attribute__((target("avx2"))) inline __m256d Avx2Int64ToDouble(__m256i v) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000);  // 2^52
  const __m256i magic_hi32 =
      _mm256_set1_epi64x(0x4530000080000000);  // 2^84 + 2^63
  const __m256i magic_all =
      _mm256_set1_epi64x(0x4530000080100000);  // 2^84 + 2^63 + 2^52
  const __m256i v_lo = _mm256_blend_epi32(magic_lo, v, 0b01010101);
  __m256i v_hi = _mm256_srli_epi64(v, 32);
  v_hi = _mm256_xor_si256(v_hi, magic_hi32);
  const __m256d hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi),
                                       _mm256_castsi256_pd(magic_all));
  return _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo));
}

/// Compare + movemask over an int64-backed column (kInt64 / kDatetime /
/// kBool): the scalar path compares `static_cast<double>(ints[row])`, so
/// the lanes convert exactly and reuse the double predicates. 16 × 4-lane
/// converts+compares fill one 64-row mask word.
__attribute__((target("avx2"))) void Avx2Int64PredWords(
    const CompiledFilter::BoundPredicate& b, size_t n, uint64_t* words,
    bool first) {
  const int64_t* vals = b.column->raw_ints();
  const uint8_t* valid = b.column->raw_validity();
  const bool is_eq = b.kind == Predicate::Kind::kEquals;
  const __m256d lo = _mm256_set1_pd(b.lo);
  const __m256d hi = _mm256_set1_pd(b.hi);
  const __m256d eq = _mm256_set1_pd(b.equals_numeric);
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256i zero = _mm256_setzero_si256();
  const size_t n_full = n >> 6;
  for (size_t w = 0; w < n_full; ++w) {
    const size_t base = w << 6;
    uint64_t m = 0;
    for (size_t k = 0; k < 64; k += 4) {
      const __m256i raw = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(vals + base + k));
      const __m256d v = Avx2Int64ToDouble(raw);
      __m256d ok;
      if (is_eq) {
        ok = _mm256_cmp_pd(v, eq, _CMP_EQ_OQ);
      } else {
        ok = all;
        if (b.has_lo) {
          ok = _mm256_and_pd(ok, _mm256_cmp_pd(v, lo, _CMP_NLT_UQ));
        }
        if (b.has_hi) {
          ok = _mm256_and_pd(ok, _mm256_cmp_pd(v, hi, _CMP_NGT_UQ));
        }
      }
      m |= static_cast<uint64_t>(
               static_cast<uint32_t>(_mm256_movemask_pd(ok)))
           << k;
    }
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base + 32));
    const uint64_t null_lo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, zero)));
    const uint64_t null_hi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(vb, zero)));
    m &= ~(null_lo | (null_hi << 32));
    if (first) {
      words[w] = m;
    } else {
      words[w] &= m;
    }
  }
  ScalarPredicateWords(b, n_full << 6, n, words, first);
}

/// Dictionary-code equality over a kString column: 8 × 8-lane epi32
/// compares per 64-row word.
__attribute__((target("avx2"))) void Avx2CodePredWords(
    const CompiledFilter::BoundPredicate& b, size_t n, uint64_t* words,
    bool first) {
  const int32_t* codes = b.column->raw_codes();
  const uint8_t* valid = b.column->raw_validity();
  const __m256i target = _mm256_set1_epi32(b.code);
  const __m256i zero = _mm256_setzero_si256();
  const size_t n_full = n >> 6;
  for (size_t w = 0; w < n_full; ++w) {
    const size_t base = w << 6;
    uint64_t m = 0;
    for (size_t k = 0; k < 64; k += 8) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + base + k));
      const __m256i okm = _mm256_cmpeq_epi32(c, target);
      m |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm256_movemask_ps(_mm256_castsi256_ps(okm))))
           << k;
    }
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + base + 32));
    const uint64_t null_lo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, zero)));
    const uint64_t null_hi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(vb, zero)));
    m &= ~(null_lo | (null_hi << 32));
    if (first) {
      words[w] = m;
    } else {
      words[w] &= m;
    }
  }
  ScalarPredicateWords(b, n_full << 6, n, words, first);
}

#endif  // FEATLIB_HAVE_AVX2_PATH

void SimdBuildFilterMask(const CompiledFilter& filter, Bitset* out) {
  const size_t n = filter.num_rows();
  if (n == 0) return;
  uint64_t* words = out->mutable_words();
  const size_t n_words = out->num_words();
  const std::vector<CompiledFilter::BoundPredicate>& bound = filter.bound();
  if (bound.empty()) {
    // No non-trivial conjunct: every row matches.
    std::fill(words, words + n_words, ~uint64_t{0});
    out->ClearTail();
    return;
  }
  const SimdLevel level = DetectedSimdLevel();
  (void)level;
  bool first = true;
  for (const CompiledFilter::BoundPredicate& b : bound) {
    if (b.kind == Predicate::Kind::kEquals && b.is_string && b.code < 0) {
      // Operand absent from the dictionary: the conjunction matches nothing.
      std::fill(words, words + n_words, uint64_t{0});
      return;
    }
#if defined(FEATLIB_HAVE_AVX2_PATH)
    if (level == SimdLevel::kAvx2) {
      if (!b.is_string && b.column->type() == DataType::kDouble) {
        Avx2DoublePredWords(b, n, words, first);
        first = false;
        continue;
      }
      if (!b.is_string && (b.column->type() == DataType::kInt64 ||
                           b.column->type() == DataType::kDatetime ||
                           b.column->type() == DataType::kBool)) {
        Avx2Int64PredWords(b, n, words, first);
        first = false;
        continue;
      }
      if (b.is_string) {
        Avx2CodePredWords(b, n, words, first);
        first = false;
        continue;
      }
    }
#endif
    // Non-AVX2 hosts (and any column type without a vector path) evaluate
    // per row.
    ScalarPredicateWords(b, 0, n, words, first);
    first = false;
  }
  out->ClearTail();
}

}  // namespace

const KernelOps& SimdKernelOps() {
  static const KernelOps ops = {
      /*backend=*/KernelBackend::kSimd,
      /*level=*/DetectedSimdLevel(),
      /*aggregate_streaming=*/&SimdAggregateStreaming,
      /*aggregate_from_materialized=*/&SimdAggregateFromMaterialized,
      /*build_materialized=*/&SimdBuildMaterializedValues,
      /*compute_feature=*/&SimdComputeFeatureKernel,
      /*build_filter_mask=*/&SimdBuildFilterMask,
  };
  return ops;
}

}  // namespace featlib

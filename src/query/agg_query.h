#pragma once

/// \file agg_query.h
/// \brief The predicate-aware group-by aggregation query of Def. 2:
///
///   SELECT k, agg(a) AS feature FROM R
///   WHERE pred(p1) AND ... AND pred(pw)
///   GROUP BY k

#include <string>
#include <vector>

#include "query/aggregate.h"
#include "query/predicate.h"
#include "table/table.h"

namespace featlib {

/// \brief A fully-specified predicate-aware SQL query q in a query pool Q_T.
struct AggQuery {
  AggFunction agg = AggFunction::kCount;
  /// Attribute aggregated over (a in Def. 2).
  std::string agg_attr;
  /// Group-by / join keys (k, a non-empty subset of the FK attributes).
  std::vector<std::string> group_keys;
  /// Conjunctive WHERE clause (may be empty = no predicate).
  std::vector<Predicate> predicates;

  /// SQL text rendering for logging / inspection.
  std::string ToSql(const std::string& relation_name, const Table& schema_of) const;

  /// Deterministic canonical key for caching and deduplication.
  std::string CacheKey() const;

  /// Basic validation against the relevant table's schema.
  Status Validate(const Table& relevant) const;
};

}  // namespace featlib

#pragma once

/// \file morsel.h
/// \brief Out-of-core morsel execution: row-range partitioning of the
/// relevant table, bounded-memory streaming aggregation with deterministic
/// cross-morsel combiners, and a double-buffered build/combine pipeline.
///
/// The in-RAM planner path (query/query_planner.h) builds every artifact —
/// group index row ids, selection masks, value views — over the *whole*
/// relevant table at once, so its peak memory is proportional to the table.
/// This layer is the same three phases restructured for tables that do not
/// fit: the table is split into row-range **morsels** (MorselSet), each
/// morsel's artifacts are built over a morsel-local sub-table (columns
/// gathered by Column::Take, which shares string dictionaries, so predicate
/// compilation, key encoding, and the SIMD kernels all run unchanged on the
/// morsel-local row space), and per-candidate **combiners** fold each
/// morsel's rows into per-group accumulators. Only the in-flight morsels'
/// artifacts are alive at any time, so peak artifact memory is ~2 morsels
/// plus the per-group state — never the whole table.
///
/// **Bit-identity contract.** Morsels are processed strictly in ascending
/// row order and group ids are assigned first-seen across morsels
/// (GroupIndexBuilder), so every accumulator sees exactly the value sequence
/// the single-pass kernels see:
///  - COUNT/SUM/AVG/MIN/MAX carry their accumulators across morsels
///    (identical left-to-right float accumulation);
///  - VAR/STD/KURTOSIS are two-pass in the oracle, so the pipeline runs a
///    **second sweep**: sweep 1 accumulates sums, then morsel artifacts are
///    rebuilt deterministically (lookup-only GroupIndexBuilder::MapMorsel)
///    and squared deviations accumulate against the global means in the
///    same row order;
///  - COUNT_DISTINCT/ENTROPY merge per-group ordered value->count maps
///    (outputs depend only on run counts in ascending value order — exactly
///    what an ordered map stores);
///  - MODE/MAD/MEDIAN append per-group value buffers in row order and
///    finalize through the shared ComputeAggregate oracle.
/// The result is byte-identical to the single-pass path at every morsel
/// size and thread count (tests/morsel_test.cc sweeps both).
///
/// **Prefetch pipeline.** While the ThreadPool fans the candidate combiners
/// out over morsel i, an AsyncStage thread builds morsel i+1's artifacts
/// (builds are strictly sequential — the group-id assignment order *is* the
/// determinism contract — so one prefetch thread is the maximum useful
/// build parallelism). Happens-before chain: build(i) -> Await -> combine(i)
/// || build(i+1) -> Await -> combine(i+1): combiners only read MorselData
/// the preceding Await ordered, and the builder is only mutated by the one
/// in-flight build.
///
/// **Memory bound.** Each morsel's estimated artifact bytes are charged to
/// the ExecContext before its build starts and released after its combine,
/// so a budget bounds the pipeline at ~2 in-flight morsels; combiner-state
/// growth and the finished key maps / per-group features are charged as
/// they appear. ExecContext::peak_charged_bytes() measures the bound.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "query/agg_query.h"
#include "query/group_index.h"
#include "table/table.h"

namespace featlib {

class ThreadPool;
struct KernelOps;

/// One row-range shard [begin, end) of the relevant table.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t rows() const { return end - begin; }
};

/// \brief The ordered row-range partition of one relevant table.
///
/// Morsels are contiguous, non-empty, cover [0, n_rows) exactly, and are
/// processed in ascending order — the order every determinism guarantee of
/// the combiners leans on. The degenerate single-morsel split (morsel_rows
/// == 0 or >= n_rows) is the whole table.
class MorselSet {
 public:
  /// Splits `n_rows` into ceil(n_rows / morsel_rows) morsels; the trailing
  /// morsel is short when morsel_rows does not divide n_rows (never empty).
  /// morsel_rows == 0 means whole-table; n_rows == 0 yields no morsels.
  static MorselSet Split(size_t n_rows, size_t morsel_rows);

  size_t size() const { return morsels_.size(); }
  bool empty() const { return morsels_.empty(); }
  const Morsel& operator[](size_t i) const { return morsels_[i]; }
  const std::vector<Morsel>& morsels() const { return morsels_; }

 private:
  std::vector<Morsel> morsels_;
};

/// Execution knobs of one morsel-streamed batch.
struct MorselOptions {
  /// Rows per morsel; 0 = whole table as one morsel.
  size_t morsel_rows = 0;
  /// Overlap morsel i+1's artifact build with morsel i's combine on a
  /// dedicated AsyncStage thread. Off = fully sequential (same bytes).
  bool prefetch = true;
  /// Pool for the per-candidate combine fan-out; nullptr = serial.
  ThreadPool* pool = nullptr;
  /// Kernel table for mask builds; nullptr resolves the configured backend.
  const KernelOps* ops = nullptr;
  /// Cooperative limits; checked at morsel boundaries and charged per
  /// in-flight morsel. May be null.
  const ExecContext* ctx = nullptr;
};

/// Observability of one ExecuteMorsels run (bench + tests).
struct MorselExecStats {
  size_t morsels = 0;
  /// 1, or 2 when a two-pass aggregate (VAR family / KURTOSIS) re-streamed.
  size_t sweeps = 0;
  /// Builds launched on the prefetch thread (overlapped with a combine).
  size_t prefetched_builds = 0;
  /// Executor-tracked peak of in-flight morsel artifacts + combiner state +
  /// finished key maps and features (same accounting the ExecContext sees).
  size_t peak_artifact_bytes = 0;
  double build_seconds = 0.0;
  double combine_seconds = 0.0;
};

/// The morsel executor's output: per-group feature values per candidate,
/// plus the key-map-only group indexes that map training rows onto them.
struct MorselResult {
  /// candidate_group value for candidates that failed in isolated mode.
  static constexpr size_t kNoGroupSpec = SIZE_MAX;

  /// [candidate][group id] aggregate values (NaN where undefined); empty
  /// for failed isolated candidates.
  std::vector<std::vector<double>> per_group;
  /// Distinct group indexes (first-use order across the batch), built
  /// incrementally across morsels; key-map-only (GroupIndexBuilder::Finish),
  /// valid for MapTrainingRows. Owned here — deliberately *not* published
  /// into any ArtifactStore, whose consumers expect per-row ids.
  std::vector<std::shared_ptr<const GroupIndex>> group_indexes;
  /// per_group[i] is over group_indexes[candidate_group[i]]'s group space.
  std::vector<size_t> candidate_group;
  MorselExecStats stats;
};

/// Runs the full morsel pipeline over `queries`: compile (dedup group /
/// filter / view specs), then per sweep the sequential build + parallel
/// combine pipeline with double-buffered prefetch, then finalize.
///
/// Failure contract mirrors QueryPlanner: with `slot_errors` == nullptr the
/// first failure fails the call; otherwise `slot_errors` must be pre-sized
/// to `queries` and receives per-candidate failures (validation, injected
/// "morsel.build"/"morsel.merge" faults) while the call only fails
/// batch-wide (tripped ctx, exhausted budget). Surviving slots are
/// byte-identical to a batch that never contained the failing candidates.
Result<MorselResult> ExecuteMorsels(const std::vector<AggQuery>& queries,
                                    const Table& relevant,
                                    const MorselOptions& options,
                                    std::vector<Status>* slot_errors = nullptr);

/// The scatter step shared by the fit and serving paths: per-group values
/// through a training-row map into a feature column (NaN where the row
/// joins no group).
std::vector<double> ScatterPerGroup(const std::vector<double>& per_group,
                                    const std::vector<uint32_t>& train_map);

}  // namespace featlib

#pragma once

/// \file sql_parser.h
/// \brief Parser for the predicate-aware aggregation dialect of Def. 2.
///
/// Accepts exactly the query class FeatAug generates (and that
/// AggQuery::ToSql renders), so that queries can round-trip through SQL
/// text — users can persist an AugmentationPlan as SQL, edit it, and load
/// it back:
///
///   SELECT k1, k2, AGG(attr) AS alias
///   FROM relation
///   WHERE p = 'v' AND q BETWEEN 1 AND 5 AND r >= 3
///   GROUP BY k1, k2
///
/// Keywords are case-insensitive; string literals use single quotes with
/// `''` escaping. Only the Def. 2 predicate forms are accepted: equality on
/// categorical attributes and inclusive (one- or two-sided) ranges on
/// numeric/datetime attributes. Anything outside the dialect (strict
/// comparisons, OR, IS NULL, expressions) fails with a position-annotated
/// error rather than being silently reinterpreted.

#include <string>
#include <vector>

#include "common/status.h"
#include "query/agg_query.h"
#include "table/table.h"

namespace featlib {

/// \brief A parsed query plus the identifiers the grammar cannot bind on
/// its own (relation name, feature alias).
struct ParsedAggQuery {
  AggQuery query;
  /// The FROM relation identifier.
  std::string relation;
  /// The `AS` alias of the aggregate item ("feature" when omitted).
  std::string feature_alias = "feature";
};

/// \brief Parses a single query. The text may end with an optional ';'.
Result<ParsedAggQuery> ParseAggQuerySql(const std::string& sql);

/// \brief Parses and validates against the relevant table's schema.
///
/// On top of the grammar checks this verifies attribute existence, that
/// equality literals match the column type (string literal for string
/// columns, numeric otherwise), and AggQuery::Validate's typing rules.
Result<ParsedAggQuery> ParseAggQuerySql(const std::string& sql,
                                        const Table& relevant);

/// \brief Parses a script of ';'-separated queries (a persisted
/// AugmentationPlan). Empty statements are skipped.
Result<std::vector<ParsedAggQuery>> ParseAggQueryScript(const std::string& sql);

}  // namespace featlib

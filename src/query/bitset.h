#pragma once

/// \file bitset.h
/// \brief 64-bit word-packed selection bitset for predicate masks.
///
/// The candidate-evaluation hot loop ANDs WHERE-predicate selection masks and
/// then streams the selected rows into per-group accumulators. A byte-per-row
/// mask pays one load + branch per row for both steps; packing 64 rows per
/// word turns the AND into a trivially auto-vectorized word loop, selectivity
/// counting into per-word popcount, and selected-row iteration into a word
/// scan that skips 64 non-matching rows per load (`countr_zero` + clear
/// lowest set bit).
///
/// Invariant: bits at positions >= size() (the tail of the last word) are
/// always zero, so Count() and ForEachSetBit() never need tail masking.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace featlib {

class Bitset {
 public:
  Bitset() = default;

  /// All-zero bitset over `n_bits` rows.
  explicit Bitset(size_t n_bits)
      : n_bits_(n_bits), words_((n_bits + 63) / 64, 0) {}

  /// Packs a byte-per-row mask (bit set iff the byte is non-zero).
  static Bitset FromBytes(const uint8_t* bytes, size_t n);

  /// Number of rows covered (bits, not words).
  size_t size() const { return n_bits_; }
  size_t num_words() const { return words_.size(); }
  /// Heap footprint of the packed words (cache byte accounting).
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }
  const uint64_t* words() const { return words_.data(); }

  /// Mutable word access for bulk writers (the vectorized predicate-mask
  /// builder fills whole words via compare+movemask). Writers must preserve
  /// the tail-zero invariant — call ClearTail() after writing the last word.
  uint64_t* mutable_words() { return words_.data(); }
  /// Zeroes the bits at positions >= size() in the last word, restoring the
  /// tail invariant after bulk word writes.
  void ClearTail() {
    if (!words_.empty() && (n_bits_ & 63) != 0) {
      words_.back() &= (uint64_t{1} << (n_bits_ & 63)) - 1;
    }
  }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// this &= other. Sizes must match; the tail-zero invariant is preserved
  /// (AND can only clear bits).
  void AndWith(const Bitset& other);

  /// Fused this &= other with the popcount of the result computed in the
  /// same pass — the conjunction-build kernel (no second scan, no temporary).
  size_t AndWithCount(const Bitset& other);

  /// popcount(this & other) without materializing the AND — the
  /// empty-conjunction probe.
  size_t AndCount(const Bitset& other) const;

  /// Number of set bits (per-word popcount).
  size_t Count() const;

  /// Invokes `fn(row)` for every set bit in ascending row order — the same
  /// order a byte-per-row scan visits, which the bit-identity guarantee of
  /// the executor depends on.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const size_t n_words = words_.size();
    for (size_t w = 0; w < n_words; ++w) {
      uint64_t bits = words_[w];
      const size_t base = w << 6;
      while (bits != 0) {
        fn(base + static_cast<size_t>(std::countr_zero(bits)));
        bits &= bits - 1;  // clear lowest set bit
      }
    }
  }

 private:
  size_t n_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace featlib

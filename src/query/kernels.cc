#include "query/kernels.h"

#include <cmath>

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

double Nan() { return std::nan(""); }

}  // namespace

std::vector<double> AggregateStreaming(
    AggFunction fn, const GroupIndex& index, const Bitset* mask,
    const double* view, std::vector<uint32_t>* first_selected_row) {
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();
  std::vector<double> feature(n_groups, Nan());
  if (first_selected_row) first_selected_row->assign(n_groups, kNoGroup);
  if (n_groups == 0) return feature;
  // Empty selection detected by popcount: every group is absent, all NaN.
  if (mask != nullptr && mask->Count() == 0) return feature;

  // Rows passing the filter per group; groups left at 0 are "absent" (the
  // original per-candidate path never entered them into its hash map) and
  // stay NaN even for COUNT. value_count tracks non-null aggregation cells.
  std::vector<uint32_t> present(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);

  // Visits the selected rows in ascending order — a word scan over the
  // packed bitset, or all rows when there is no predicate.
  auto for_each_selected = [&](auto&& body) {
    if (mask == nullptr) {
      for (size_t row = 0; row < n; ++row) body(row);
    } else {
      mask->ForEachSetBit(body);
    }
  };

  // Streams the selected rows' values in ascending row order — the order
  // every accumulation below depends on for bit-identical arithmetic with
  // the recorded goldens. A null `view` (COUNT(*) without an agg attribute)
  // tallies row presence and reads no values at all.
  auto stream = [&](auto&& on_value) {
    for_each_selected([&](size_t row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) return;
      if (present[g] == 0 && first_selected_row) {
        (*first_selected_row)[g] = static_cast<uint32_t>(row);
      }
      ++present[g];
      if (view == nullptr) return;
      const double v = view[row];
      if (std::isnan(v)) return;  // null cell
      ++value_count[g];
      on_value(g, v);
    });
  };

  switch (fn) {
    case AggFunction::kCount: {
      stream([](uint32_t, double) {});
      if (view == nullptr) {
        // COUNT(*): selected rows per group, straight from the presence
        // tally (groups with any selected row are by construction > 0).
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(present[g]);
        }
      } else {
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(value_count[g]);
        }
      }
      return feature;
    }
    case AggFunction::kSum:
    case AggFunction::kAvg: {
      std::vector<double> sum(n_groups, 0.0);
      stream([&](uint32_t g, double v) { sum[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] == 0 || value_count[g] == 0) continue;
        feature[g] = fn == AggFunction::kSum
                         ? sum[g]
                         : sum[g] / static_cast<double>(value_count[g]);
      }
      return feature;
    }
    case AggFunction::kMin:
    case AggFunction::kMax: {
      const bool is_min = fn == AggFunction::kMin;
      std::vector<double> best(n_groups, 0.0);
      stream([&](uint32_t g, double v) {
        if (value_count[g] == 1 || (is_min ? v < best[g] : v > best[g])) {
          best[g] = v;
        }
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] > 0 && value_count[g] > 0) feature[g] = best[g];
      }
      return feature;
    }
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample: {
      const bool sample =
          fn == AggFunction::kVarSample || fn == AggFunction::kStdSample;
      const bool std_dev =
          fn == AggFunction::kStd || fn == AggFunction::kStdSample;
      std::vector<double> mean(n_groups, 0.0);
      stream([&](uint32_t g, double v) { mean[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (value_count[g] > 0) mean[g] /= static_cast<double>(value_count[g]);
      }
      // Second value pass accumulates squared deviations in the same row
      // order as the reference's two-pass variance.
      std::vector<double> ss(n_groups, 0.0);
      for_each_selected([&](size_t row) {
        const uint32_t g = row_groups[row];
        if (g == kNoGroup) return;
        const double v = view[row];
        if (std::isnan(v)) return;
        const double d = v - mean[g];
        ss[g] += d * d;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        const size_t cnt = value_count[g];
        if (present[g] == 0 || cnt == 0 || (sample && cnt < 2)) continue;
        const double denom =
            sample ? static_cast<double>(cnt - 1) : static_cast<double>(cnt);
        const double var = ss[g] / denom;
        feature[g] = std_dev ? std::sqrt(var) : var;
      }
      return feature;
    }
    default:
      break;
  }

  // Materializing fallback for order-statistic / frequency aggregates:
  // bucket the selected non-null values into one flat array (preserving row
  // order), then delegate each group's slice to the shared ComputeAggregate.
  // These aggregates always carry an agg attribute, so `view` is non-null.
  // Cold path — inside the planner, such candidates get a shared bucket
  // materialization instead; only ExecuteAggQuery streams them.
  if (first_selected_row) stream([](uint32_t, double) {});
  return AggregateFromMaterialized(fn,
                                   BuildMaterializedValues(index, mask, view));
}

std::vector<double> AggregateFromMaterialized(AggFunction fn,
                                              const MaterializedValues& m) {
  const size_t n_groups = m.present.size();
  std::vector<double> feature(n_groups, Nan());
  for (size_t g = 0; g < n_groups; ++g) {
    if (m.present[g] == 0) continue;
    feature[g] = ComputeAggregate(fn, m.flat.data() + m.offsets[g],
                                  m.offsets[g + 1] - m.offsets[g]);
  }
  return feature;
}

MaterializedValues BuildMaterializedValues(const GroupIndex& index,
                                           const Bitset* mask,
                                           const double* view) {
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();

  auto for_each_selected = [&](auto&& body) {
    if (mask == nullptr) {
      for (size_t row = 0; row < n; ++row) body(row);
    } else {
      mask->ForEachSetBit(body);
    }
  };

  MaterializedValues m;
  m.present.assign(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);
  for_each_selected([&](size_t row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) return;
    ++m.present[g];
    if (!std::isnan(view[row])) ++value_count[g];
  });
  m.offsets.assign(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    m.offsets[g + 1] = m.offsets[g] + value_count[g];
  }
  m.flat.resize(m.offsets[n_groups]);
  std::vector<size_t> cursor(m.offsets.begin(), m.offsets.end() - 1);
  for_each_selected([&](size_t row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) return;
    const double v = view[row];
    if (std::isnan(v)) return;
    m.flat[cursor[g]++] = v;
  });
  return m;
}

std::vector<double> ComputeFeatureKernel(const PlannedCandidate& p) {
  const std::vector<double> per_group =
      p.mat != nullptr
          ? AggregateFromMaterialized(p.query->agg, *p.mat)
          : AggregateStreaming(p.query->agg, *p.index, p.mask, p.view,
                               nullptr);
  const std::vector<uint32_t>& train_map = *p.train_map;
  std::vector<double> out(train_map.size(), Nan());
  for (size_t row = 0; row < out.size(); ++row) {
    const uint32_t g = train_map[row];
    if (g != kNoGroup) out[row] = per_group[g];
  }
  return out;
}

}  // namespace featlib

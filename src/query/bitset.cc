#include "query/bitset.h"

namespace featlib {

Bitset Bitset::FromBytes(const uint8_t* bytes, size_t n) {
  Bitset out(n);
  for (size_t i = 0; i < n; ++i) {
    if (bytes[i] != 0) out.Set(i);
  }
  return out;
}

void Bitset::AndWith(const Bitset& other) {
  const size_t n_words = words_.size();
  const uint64_t* rhs = other.words_.data();
  uint64_t* lhs = words_.data();
  for (size_t w = 0; w < n_words; ++w) {
    lhs[w] &= rhs[w];
  }
}

size_t Bitset::AndWithCount(const Bitset& other) {
  const size_t n_words = words_.size();
  const uint64_t* rhs = other.words_.data();
  uint64_t* lhs = words_.data();
  size_t count = 0;
  for (size_t w = 0; w < n_words; ++w) {
    const uint64_t v = lhs[w] & rhs[w];
    lhs[w] = v;
    count += static_cast<size_t>(std::popcount(v));
  }
  return count;
}

size_t Bitset::AndCount(const Bitset& other) const {
  const size_t n_words = words_.size();
  const uint64_t* rhs = other.words_.data();
  const uint64_t* lhs = words_.data();
  size_t count = 0;
  for (size_t w = 0; w < n_words; ++w) {
    count += static_cast<size_t>(std::popcount(lhs[w] & rhs[w]));
  }
  return count;
}

size_t Bitset::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) {
    count += static_cast<size_t>(std::popcount(w));
  }
  return count;
}

}  // namespace featlib

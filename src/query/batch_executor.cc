#include "query/batch_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/str_util.h"
#include "query/predicate.h"

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

// Mass-evict the predicate-mask cache past this many bytes. Range-predicate
// operands from the continuous search space rarely repeat, so the cache
// would otherwise grow with every candidate.
constexpr size_t kMaskCacheByteCap = 64u << 20;

// Byte cap for cached per-bucket materializations (flat grouped values).
constexpr size_t kMatCacheByteCap = 128u << 20;

double Nan() { return std::nan(""); }

// Aggregates whose one-pass streaming kernel accumulates directly into
// per-group arrays; the rest materialize per-group value vectors.
bool IsStreamingAgg(AggFunction fn) {
  switch (fn) {
    case AggFunction::kCount:
    case AggFunction::kSum:
    case AggFunction::kMin:
    case AggFunction::kMax:
    case AggFunction::kAvg:
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample:
      return true;
    default:
      return false;
  }
}

// Candidates differing only in agg function share all grouped values.
std::string BucketKey(const AggQuery& q) {
  std::string out = StrJoin(q.group_keys, "\x1f");
  out += "\x1e";
  out += q.agg_attr;
  for (const Predicate& p : q.predicates) {
    if (p.IsTrivial()) continue;
    out += "\x1e";
    out += p.CacheKey();
  }
  return out;
}

}  // namespace

Result<BatchExecutor::GroupEntry*> BatchExecutor::GetGroupEntry(
    const std::vector<std::string>& group_keys, const Table& relevant) {
  const std::string key = StrJoin(group_keys, "\x1f");
  auto it = group_cache_.find(key);
  if (it == group_cache_.end()) {
    FEAT_ASSIGN_OR_RETURN(GroupIndex index, GroupIndex::Build(relevant, group_keys));
    ++group_builds_;
    it = group_cache_.emplace(key, GroupEntry{std::move(index), false, {}}).first;
  }
  return &it->second;
}

Result<const std::vector<uint8_t>*> BatchExecutor::GetPredicateMask(
    const Predicate& p, const Table& relevant) {
  const std::string key = p.CacheKey();
  auto it = mask_cache_.find(key);
  if (it != mask_cache_.end()) return &it->second;
  if (mask_cache_bytes_ + relevant.num_rows() > kMaskCacheByteCap) {
    mask_cache_.clear();
    mask_cache_bytes_ = 0;
  }
  FEAT_ASSIGN_OR_RETURN(CompiledFilter filter,
                        CompiledFilter::Compile({p}, relevant));
  std::vector<uint8_t> mask(relevant.num_rows());
  for (size_t row = 0; row < mask.size(); ++row) {
    mask[row] = filter.Matches(row) ? 1 : 0;
  }
  ++mask_builds_;
  mask_cache_bytes_ += mask.size();
  return &mask_cache_.emplace(key, std::move(mask)).first->second;
}

Result<const uint8_t*> BatchExecutor::BuildSelectionMask(const AggQuery& q,
                                                         const Table& relevant) {
  std::vector<const Predicate*> active;
  for (const Predicate& p : q.predicates) {
    if (!p.IsTrivial()) active.push_back(&p);
  }
  if (active.empty()) return static_cast<const uint8_t*>(nullptr);
  if (active.size() == 1) {
    // The common one-predicate query uses the cached mask directly; the
    // pointer stays valid until the next GetPredicateMask (which no caller
    // issues before consuming the mask).
    FEAT_ASSIGN_OR_RETURN(const std::vector<uint8_t>* mask,
                          GetPredicateMask(*active[0], relevant));
    return mask->data();
  }
  // Conjunctions snapshot the first mask, then AND each further one in as
  // soon as it is fetched (a fetch may evict earlier cache pointers).
  FEAT_ASSIGN_OR_RETURN(const std::vector<uint8_t>* first,
                        GetPredicateMask(*active[0], relevant));
  combined_mask_.assign(first->begin(), first->end());
  for (size_t i = 1; i < active.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<uint8_t>* mask,
                          GetPredicateMask(*active[i], relevant));
    for (size_t row = 0; row < combined_mask_.size(); ++row) {
      combined_mask_[row] &= (*mask)[row];
    }
  }
  return combined_mask_.data();
}

Result<const std::vector<double>*> BatchExecutor::GetValueView(
    const std::string& attr, const Table& relevant) {
  auto it = view_cache_.find(attr);
  if (it != view_cache_.end()) return &it->second;
  FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(attr));
  std::vector<double> view(relevant.num_rows());
  // NaN encodes null: stored doubles are never NaN (AppendDouble maps NaN
  // to null) and int/string numeric views cannot produce one.
  for (size_t row = 0; row < view.size(); ++row) {
    view[row] = col->AsDouble(row);
  }
  return &view_cache_.emplace(attr, std::move(view)).first->second;
}

Result<std::vector<double>> BatchExecutor::AggregatePerGroup(
    const AggQuery& q, const GroupIndex& index, const uint8_t* mask,
    const Table& relevant, std::vector<uint32_t>* first_selected_row) {
  FEAT_ASSIGN_OR_RETURN(const std::vector<double>* view_ptr,
                        GetValueView(q.agg_attr, relevant));
  const double* view = view_ptr->data();
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();
  std::vector<double> feature(n_groups, Nan());
  if (first_selected_row) first_selected_row->assign(n_groups, kNoGroup);
  if (n_groups == 0) return feature;

  // Rows passing the filter per group; groups left at 0 are "absent" (the
  // legacy path never entered them into its hash map) and stay NaN even for
  // COUNT. value_count tracks non-null aggregation cells.
  std::vector<uint32_t> present(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);

  // Streams the selected rows in ascending order — the same order the
  // legacy path appended group row vectors in — so every accumulation below
  // performs bit-identical arithmetic to the materializing reference.
  auto stream = [&](auto&& on_value) {
    for (size_t row = 0; row < n; ++row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) continue;
      if (mask != nullptr && mask[row] == 0) continue;
      if (present[g] == 0 && first_selected_row) {
        (*first_selected_row)[g] = static_cast<uint32_t>(row);
      }
      ++present[g];
      const double v = view[row];
      if (std::isnan(v)) continue;  // null cell
      ++value_count[g];
      on_value(g, v);
    }
  };

  switch (q.agg) {
    case AggFunction::kCount: {
      stream([](uint32_t, double) {});
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] > 0) feature[g] = static_cast<double>(value_count[g]);
      }
      return feature;
    }
    case AggFunction::kSum:
    case AggFunction::kAvg: {
      std::vector<double> sum(n_groups, 0.0);
      stream([&](uint32_t g, double v) { sum[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] == 0 || value_count[g] == 0) continue;
        feature[g] = q.agg == AggFunction::kSum
                         ? sum[g]
                         : sum[g] / static_cast<double>(value_count[g]);
      }
      return feature;
    }
    case AggFunction::kMin:
    case AggFunction::kMax: {
      const bool is_min = q.agg == AggFunction::kMin;
      std::vector<double> best(n_groups, 0.0);
      stream([&](uint32_t g, double v) {
        if (value_count[g] == 1 || (is_min ? v < best[g] : v > best[g])) {
          best[g] = v;
        }
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] > 0 && value_count[g] > 0) feature[g] = best[g];
      }
      return feature;
    }
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample: {
      const bool sample =
          q.agg == AggFunction::kVarSample || q.agg == AggFunction::kStdSample;
      const bool std_dev =
          q.agg == AggFunction::kStd || q.agg == AggFunction::kStdSample;
      std::vector<double> mean(n_groups, 0.0);
      stream([&](uint32_t g, double v) { mean[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (value_count[g] > 0) mean[g] /= static_cast<double>(value_count[g]);
      }
      // Second value pass accumulates squared deviations in the same row
      // order as the reference's two-pass variance.
      std::vector<double> ss(n_groups, 0.0);
      for (size_t row = 0; row < n; ++row) {
        const uint32_t g = row_groups[row];
        if (g == kNoGroup) continue;
        if (mask != nullptr && mask[row] == 0) continue;
        const double v = view[row];
        if (std::isnan(v)) continue;
        const double d = v - mean[g];
        ss[g] += d * d;
      }
      for (size_t g = 0; g < n_groups; ++g) {
        const size_t cnt = value_count[g];
        if (present[g] == 0 || cnt == 0 || (sample && cnt < 2)) continue;
        const double denom =
            sample ? static_cast<double>(cnt - 1) : static_cast<double>(cnt);
        const double var = ss[g] / denom;
        feature[g] = std_dev ? std::sqrt(var) : var;
      }
      return feature;
    }
    default:
      break;
  }

  // Materializing fallback for order-statistic / frequency aggregates:
  // bucket the selected non-null values into one flat array (preserving row
  // order), then delegate each group's slice to the shared ComputeAggregate.
  stream([](uint32_t, double) {});
  std::vector<size_t> offsets(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    offsets[g + 1] = offsets[g] + value_count[g];
  }
  std::vector<double> flat(offsets[n_groups]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t row = 0; row < n; ++row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) continue;
    if (mask != nullptr && mask[row] == 0) continue;
    const double v = view[row];
    if (std::isnan(v)) continue;
    flat[cursor[g]++] = v;
  }
  for (size_t g = 0; g < n_groups; ++g) {
    if (present[g] == 0) continue;
    feature[g] = ComputeAggregate(q.agg, flat.data() + offsets[g],
                                  offsets[g + 1] - offsets[g]);
  }
  return feature;
}

Result<const BatchExecutor::MaterializedValues*> BatchExecutor::GetMaterialized(
    const std::string& bucket, const GroupIndex& index, const uint8_t* mask,
    const std::string& agg_attr, const Table& relevant) {
  auto it = mat_cache_.find(bucket);
  if (it != mat_cache_.end()) return &it->second;

  FEAT_ASSIGN_OR_RETURN(const std::vector<double>* view_ptr,
                        GetValueView(agg_attr, relevant));
  const double* view = view_ptr->data();
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();

  MaterializedValues m;
  m.present.assign(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);
  for (size_t row = 0; row < n; ++row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) continue;
    if (mask != nullptr && mask[row] == 0) continue;
    ++m.present[g];
    if (!std::isnan(view[row])) ++value_count[g];
  }
  m.offsets.assign(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    m.offsets[g + 1] = m.offsets[g] + value_count[g];
  }
  m.flat.resize(m.offsets[n_groups]);
  std::vector<size_t> cursor(m.offsets.begin(), m.offsets.end() - 1);
  for (size_t row = 0; row < n; ++row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) continue;
    if (mask != nullptr && mask[row] == 0) continue;
    const double v = view[row];
    if (std::isnan(v)) continue;
    m.flat[cursor[g]++] = v;
  }

  const size_t bytes = m.flat.size() * sizeof(double) +
                       m.offsets.size() * sizeof(size_t) +
                       m.present.size() * sizeof(uint32_t);
  if (mat_cache_bytes_ + bytes > kMatCacheByteCap) {
    mat_cache_.clear();
    mat_cache_bytes_ = 0;
  }
  mat_cache_bytes_ += bytes;
  ++materializations_;
  return &mat_cache_.emplace(bucket, std::move(m)).first->second;
}

std::vector<double> BatchExecutor::AggregateFromMaterialized(
    AggFunction fn, const MaterializedValues& m) {
  const size_t n_groups = m.present.size();
  std::vector<double> feature(n_groups, Nan());
  for (size_t g = 0; g < n_groups; ++g) {
    if (m.present[g] == 0) continue;
    feature[g] = ComputeAggregate(fn, m.flat.data() + m.offsets[g],
                                  m.offsets[g + 1] - m.offsets[g]);
  }
  return feature;
}

Result<std::vector<double>> BatchExecutor::ComputeFeatureColumn(
    const AggQuery& q, const Table& training, const Table& relevant) {
  return EvaluateOne(q, training, relevant, /*prefer_materialized=*/false);
}

Result<std::vector<double>> BatchExecutor::EvaluateOne(
    const AggQuery& q, const Table& training, const Table& relevant,
    bool prefer_materialized) {
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  FEAT_ASSIGN_OR_RETURN(GroupEntry * entry, GetGroupEntry(q.group_keys, relevant));
  if (!entry->has_train_map || entry->train_map.size() != training.num_rows()) {
    FEAT_ASSIGN_OR_RETURN(entry->train_map,
                          entry->index.MapTrainingRows(training, relevant));
    entry->has_train_map = true;
  }
  // Candidates that differ only in agg function share one materialization;
  // until a bucket is materialized, streaming-family aggregates take the
  // one-pass kernel (no flat array needed).
  const std::string bucket = BucketKey(q);
  std::vector<double> per_group;
  auto mat_it = mat_cache_.find(bucket);
  if (mat_it != mat_cache_.end()) {
    per_group = AggregateFromMaterialized(q.agg, mat_it->second);
  } else {
    FEAT_ASSIGN_OR_RETURN(const uint8_t* mask, BuildSelectionMask(q, relevant));
    if (IsStreamingAgg(q.agg) && !prefer_materialized) {
      FEAT_ASSIGN_OR_RETURN(
          per_group, AggregatePerGroup(q, entry->index, mask, relevant, nullptr));
    } else {
      FEAT_ASSIGN_OR_RETURN(
          const MaterializedValues* m,
          GetMaterialized(bucket, entry->index, mask, q.agg_attr, relevant));
      per_group = AggregateFromMaterialized(q.agg, *m);
    }
  }

  std::vector<double> out(training.num_rows(), Nan());
  for (size_t row = 0; row < out.size(); ++row) {
    const uint32_t g = entry->train_map[row];
    if (g != kNoGroup) out[row] = per_group[g];
  }
  return out;
}

Result<std::vector<std::vector<double>>> BatchExecutor::EvaluateMany(
    const std::vector<AggQuery>& queries, const Table& training,
    const Table& relevant) {
  // Buckets shared by several candidates pay one materialization and serve
  // every member from flat slices; singleton buckets keep the cheaper
  // streaming kernel for streaming-family aggregates.
  std::unordered_map<std::string, int> bucket_counts;
  for (const AggQuery& q : queries) ++bucket_counts[BucketKey(q)];
  std::vector<std::vector<double>> out;
  out.reserve(queries.size());
  for (const AggQuery& q : queries) {
    const bool shared_bucket = bucket_counts[BucketKey(q)] > 1;
    FEAT_ASSIGN_OR_RETURN(std::vector<double> column,
                          EvaluateOne(q, training, relevant, shared_bucket));
    out.push_back(std::move(column));
  }
  return out;
}

Result<Table> BatchExecutor::ExecuteAggQuery(const AggQuery& q,
                                             const Table& relevant) {
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  FEAT_ASSIGN_OR_RETURN(GroupEntry * entry, GetGroupEntry(q.group_keys, relevant));
  FEAT_ASSIGN_OR_RETURN(const uint8_t* mask, BuildSelectionMask(q, relevant));
  std::vector<uint32_t> first_selected;
  FEAT_ASSIGN_OR_RETURN(
      std::vector<double> per_group,
      AggregatePerGroup(q, entry->index, mask, relevant, &first_selected));

  // The legacy path emitted groups in first-seen order among *filtered*
  // rows with the first matching row as representative; sorting surviving
  // groups by their first selected row reproduces both exactly.
  std::vector<uint32_t> survivors;
  survivors.reserve(first_selected.size());
  for (uint32_t g = 0; g < first_selected.size(); ++g) {
    if (first_selected[g] != kNoGroup) survivors.push_back(g);
  }
  std::sort(survivors.begin(), survivors.end(),
            [&](uint32_t a, uint32_t b) {
              return first_selected[a] < first_selected[b];
            });

  std::vector<uint32_t> representatives;
  representatives.reserve(survivors.size());
  Column feature(DataType::kDouble);
  feature.Reserve(survivors.size());
  for (uint32_t g : survivors) {
    representatives.push_back(first_selected[g]);
    if (std::isnan(per_group[g])) {
      feature.AppendNull();
    } else {
      feature.AppendDouble(per_group[g]);
    }
  }

  Table out;
  for (const auto& k : q.group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    FEAT_RETURN_NOT_OK(out.AddColumn(k, col->Take(representatives)));
  }
  FEAT_RETURN_NOT_OK(out.AddColumn("feature", std::move(feature)));
  return out;
}

}  // namespace featlib

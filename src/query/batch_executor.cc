#include "query/batch_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/predicate.h"

namespace featlib {

namespace {

constexpr uint32_t kNoGroup = GroupIndex::kNoGroup;

double Nan() { return std::nan(""); }

// Aggregates whose one-pass streaming kernel accumulates directly into
// per-group arrays; the rest materialize per-group value vectors.
bool IsStreamingAgg(AggFunction fn) {
  switch (fn) {
    case AggFunction::kCount:
    case AggFunction::kSum:
    case AggFunction::kMin:
    case AggFunction::kMax:
    case AggFunction::kAvg:
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample:
      return true;
    default:
      return false;
  }
}

// Candidates differing only in agg function share all grouped values.
std::string BucketKey(const AggQuery& q) {
  std::string out = StrJoin(q.group_keys, "\x1f");
  out += "\x1e";
  out += q.agg_attr;
  for (const Predicate& p : q.predicates) {
    if (p.IsTrivial()) continue;
    out += "\x1e";
    out += p.CacheKey();
  }
  return out;
}

// Cache key of a predicate conjunction's combined bitset. The "&\x1d"
// prefix keeps combos disjoint from single-predicate keys.
std::string ComboKey(const std::vector<const Predicate*>& active) {
  std::string out = "&\x1d";
  for (const Predicate* p : active) {
    out += p->CacheKey();
    out += "\x1d";
  }
  return out;
}

}  // namespace

Result<BatchExecutor::GroupEntry*> BatchExecutor::GetGroupEntry(
    const std::vector<std::string>& group_keys, const Table& relevant) {
  const std::string key = StrJoin(group_keys, "\x1f");
  auto it = group_cache_.find(key);
  if (it == group_cache_.end()) {
    FEAT_ASSIGN_OR_RETURN(GroupIndex index, GroupIndex::Build(relevant, group_keys));
    ++group_builds_;
    it = group_cache_.emplace(key, GroupEntry{std::move(index), false, {}}).first;
  }
  return &it->second;
}

void BatchExecutor::EvictMasksFor(size_t incoming) {
  if (mask_cache_bytes_ + incoming <= mask_cache_cap_bytes_) return;
  // Evict only entries no candidate of the current batch referenced: the
  // mask pointers held by in-flight PlannedCandidates must stay valid, and
  // mass-clearing mid-EvaluateMany would rebuild masks the very next
  // candidate needs (cache thrash). Range-predicate operands from the
  // continuous search space rarely repeat, so unpinned entries are cheap to
  // drop.
  for (auto it = mask_cache_.begin(); it != mask_cache_.end();) {
    if (mask_cache_bytes_ + incoming <= mask_cache_cap_bytes_) return;
    if (it->second.used_epoch == epoch_) {
      ++it;
      continue;
    }
    mask_cache_bytes_ -= it->second.bits.SizeBytes();
    it = mask_cache_.erase(it);
    ++num_evictions_;
  }
}

void BatchExecutor::EvictMaterializedFor(size_t incoming) {
  if (mat_cache_bytes_ + incoming <= mat_cache_cap_bytes_) return;
  for (auto it = mat_cache_.begin(); it != mat_cache_.end();) {
    if (mat_cache_bytes_ + incoming <= mat_cache_cap_bytes_) return;
    if (it->second.used_epoch == epoch_) {
      ++it;
      continue;
    }
    mat_cache_bytes_ -= it->second.bytes;
    it = mat_cache_.erase(it);
    ++num_evictions_;
  }
}

Result<const Bitset*> BatchExecutor::GetPredicateMask(const Predicate& p,
                                                      const Table& relevant) {
  const std::string key = p.CacheKey();
  auto it = mask_cache_.find(key);
  if (it != mask_cache_.end()) {
    it->second.used_epoch = epoch_;
    return &it->second.bits;
  }
  FEAT_ASSIGN_OR_RETURN(CompiledFilter filter,
                        CompiledFilter::Compile({p}, relevant));
  Bitset bits(relevant.num_rows());
  for (size_t row = 0; row < relevant.num_rows(); ++row) {
    if (filter.Matches(row)) bits.Set(row);
  }
  ++mask_builds_;
  EvictMasksFor(bits.SizeBytes());
  mask_cache_bytes_ += bits.SizeBytes();
  MaskEntry entry{std::move(bits), epoch_};
  return &mask_cache_.emplace(key, std::move(entry)).first->second.bits;
}

Result<const Bitset*> BatchExecutor::BuildSelectionMask(const AggQuery& q,
                                                        const Table& relevant) {
  std::vector<const Predicate*> active;
  for (const Predicate& p : q.predicates) {
    if (!p.IsTrivial()) active.push_back(&p);
  }
  if (active.empty()) return static_cast<const Bitset*>(nullptr);
  if (active.size() == 1) return GetPredicateMask(*active[0], relevant);

  // Conjunctions get their own cached bitset: one word-wise AND on first
  // sight, a lookup afterwards. Constituents fetched below are stamped with
  // the current epoch, so the eviction pass cannot drop them mid-build.
  const std::string key = ComboKey(active);
  auto it = mask_cache_.find(key);
  if (it != mask_cache_.end()) {
    it->second.used_epoch = epoch_;
    return &it->second.bits;
  }
  FEAT_ASSIGN_OR_RETURN(const Bitset* first,
                        GetPredicateMask(*active[0], relevant));
  Bitset combined = *first;
  for (size_t i = 1; i < active.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(const Bitset* mask,
                          GetPredicateMask(*active[i], relevant));
    combined.AndWith(*mask);
  }
  EvictMasksFor(combined.SizeBytes());
  mask_cache_bytes_ += combined.SizeBytes();
  MaskEntry entry{std::move(combined), epoch_};
  return &mask_cache_.emplace(key, std::move(entry)).first->second.bits;
}

Result<const std::vector<double>*> BatchExecutor::GetValueView(
    const std::string& attr, const Table& relevant) {
  auto it = view_cache_.find(attr);
  if (it != view_cache_.end()) return &it->second;
  FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(attr));
  std::vector<double> view(relevant.num_rows());
  // NaN encodes null: stored doubles are never NaN (AppendDouble maps NaN
  // to null) and int/string numeric views cannot produce one.
  for (size_t row = 0; row < view.size(); ++row) {
    view[row] = col->AsDouble(row);
  }
  return &view_cache_.emplace(attr, std::move(view)).first->second;
}

std::vector<double> BatchExecutor::AggregateStreaming(
    AggFunction fn, const GroupIndex& index, const Bitset* mask,
    const double* view, std::vector<uint32_t>* first_selected_row) {
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();
  std::vector<double> feature(n_groups, Nan());
  if (first_selected_row) first_selected_row->assign(n_groups, kNoGroup);
  if (n_groups == 0) return feature;
  // Empty selection detected by popcount: every group is absent, all NaN.
  if (mask != nullptr && mask->Count() == 0) return feature;

  // Rows passing the filter per group; groups left at 0 are "absent" (the
  // legacy path never entered them into its hash map) and stay NaN even for
  // COUNT. value_count tracks non-null aggregation cells.
  std::vector<uint32_t> present(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);

  // Visits the selected rows in ascending order — a word scan over the
  // packed bitset, or all rows when there is no predicate.
  auto for_each_selected = [&](auto&& body) {
    if (mask == nullptr) {
      for (size_t row = 0; row < n; ++row) body(row);
    } else {
      mask->ForEachSetBit(body);
    }
  };

  // Streams the selected rows' values in ascending row order — the same
  // order the legacy path appended group row vectors in — so every
  // accumulation below performs bit-identical arithmetic to the
  // materializing reference. A null `view` (COUNT(*) without an agg
  // attribute) tallies row presence and reads no values at all.
  auto stream = [&](auto&& on_value) {
    for_each_selected([&](size_t row) {
      const uint32_t g = row_groups[row];
      if (g == kNoGroup) return;
      if (present[g] == 0 && first_selected_row) {
        (*first_selected_row)[g] = static_cast<uint32_t>(row);
      }
      ++present[g];
      if (view == nullptr) return;
      const double v = view[row];
      if (std::isnan(v)) return;  // null cell
      ++value_count[g];
      on_value(g, v);
    });
  };

  switch (fn) {
    case AggFunction::kCount: {
      stream([](uint32_t, double) {});
      if (view == nullptr) {
        // COUNT(*): selected rows per group, straight from the presence
        // tally (groups with any selected row are by construction > 0).
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(present[g]);
        }
      } else {
        for (size_t g = 0; g < n_groups; ++g) {
          if (present[g] > 0) feature[g] = static_cast<double>(value_count[g]);
        }
      }
      return feature;
    }
    case AggFunction::kSum:
    case AggFunction::kAvg: {
      std::vector<double> sum(n_groups, 0.0);
      stream([&](uint32_t g, double v) { sum[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] == 0 || value_count[g] == 0) continue;
        feature[g] = fn == AggFunction::kSum
                         ? sum[g]
                         : sum[g] / static_cast<double>(value_count[g]);
      }
      return feature;
    }
    case AggFunction::kMin:
    case AggFunction::kMax: {
      const bool is_min = fn == AggFunction::kMin;
      std::vector<double> best(n_groups, 0.0);
      stream([&](uint32_t g, double v) {
        if (value_count[g] == 1 || (is_min ? v < best[g] : v > best[g])) {
          best[g] = v;
        }
      });
      for (size_t g = 0; g < n_groups; ++g) {
        if (present[g] > 0 && value_count[g] > 0) feature[g] = best[g];
      }
      return feature;
    }
    case AggFunction::kVar:
    case AggFunction::kVarSample:
    case AggFunction::kStd:
    case AggFunction::kStdSample: {
      const bool sample =
          fn == AggFunction::kVarSample || fn == AggFunction::kStdSample;
      const bool std_dev =
          fn == AggFunction::kStd || fn == AggFunction::kStdSample;
      std::vector<double> mean(n_groups, 0.0);
      stream([&](uint32_t g, double v) { mean[g] += v; });
      for (size_t g = 0; g < n_groups; ++g) {
        if (value_count[g] > 0) mean[g] /= static_cast<double>(value_count[g]);
      }
      // Second value pass accumulates squared deviations in the same row
      // order as the reference's two-pass variance.
      std::vector<double> ss(n_groups, 0.0);
      for_each_selected([&](size_t row) {
        const uint32_t g = row_groups[row];
        if (g == kNoGroup) return;
        const double v = view[row];
        if (std::isnan(v)) return;
        const double d = v - mean[g];
        ss[g] += d * d;
      });
      for (size_t g = 0; g < n_groups; ++g) {
        const size_t cnt = value_count[g];
        if (present[g] == 0 || cnt == 0 || (sample && cnt < 2)) continue;
        const double denom =
            sample ? static_cast<double>(cnt - 1) : static_cast<double>(cnt);
        const double var = ss[g] / denom;
        feature[g] = std_dev ? std::sqrt(var) : var;
      }
      return feature;
    }
    default:
      break;
  }

  // Materializing fallback for order-statistic / frequency aggregates:
  // bucket the selected non-null values into one flat array (preserving row
  // order), then delegate each group's slice to the shared ComputeAggregate.
  // These aggregates always carry an agg attribute, so `view` is non-null.
  stream([](uint32_t, double) {});
  std::vector<size_t> offsets(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    offsets[g + 1] = offsets[g] + value_count[g];
  }
  std::vector<double> flat(offsets[n_groups]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for_each_selected([&](size_t row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) return;
    const double v = view[row];
    if (std::isnan(v)) return;
    flat[cursor[g]++] = v;
  });
  for (size_t g = 0; g < n_groups; ++g) {
    if (present[g] == 0) continue;
    feature[g] = ComputeAggregate(fn, flat.data() + offsets[g],
                                  offsets[g + 1] - offsets[g]);
  }
  return feature;
}

Result<const BatchExecutor::MaterializedValues*> BatchExecutor::GetMaterialized(
    const std::string& bucket, const GroupIndex& index, const Bitset* mask,
    const std::string& agg_attr, const Table& relevant) {
  auto it = mat_cache_.find(bucket);
  if (it != mat_cache_.end()) {
    it->second.used_epoch = epoch_;
    return &it->second.values;
  }

  FEAT_ASSIGN_OR_RETURN(const std::vector<double>* view_ptr,
                        GetValueView(agg_attr, relevant));
  const double* view = view_ptr->data();
  const std::vector<uint32_t>& row_groups = index.row_groups();
  const size_t n = row_groups.size();
  const size_t n_groups = index.num_groups();

  auto for_each_selected = [&](auto&& body) {
    if (mask == nullptr) {
      for (size_t row = 0; row < n; ++row) body(row);
    } else {
      mask->ForEachSetBit(body);
    }
  };

  MaterializedValues m;
  m.present.assign(n_groups, 0);
  std::vector<uint32_t> value_count(n_groups, 0);
  for_each_selected([&](size_t row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) return;
    ++m.present[g];
    if (!std::isnan(view[row])) ++value_count[g];
  });
  m.offsets.assign(n_groups + 1, 0);
  for (size_t g = 0; g < n_groups; ++g) {
    m.offsets[g + 1] = m.offsets[g] + value_count[g];
  }
  m.flat.resize(m.offsets[n_groups]);
  std::vector<size_t> cursor(m.offsets.begin(), m.offsets.end() - 1);
  for_each_selected([&](size_t row) {
    const uint32_t g = row_groups[row];
    if (g == kNoGroup) return;
    const double v = view[row];
    if (std::isnan(v)) return;
    m.flat[cursor[g]++] = v;
  });

  const size_t bytes = m.flat.size() * sizeof(double) +
                       m.offsets.size() * sizeof(size_t) +
                       m.present.size() * sizeof(uint32_t);
  EvictMaterializedFor(bytes);
  mat_cache_bytes_ += bytes;
  ++materializations_;
  MatEntry entry{std::move(m), bytes, epoch_};
  return &mat_cache_.emplace(bucket, std::move(entry)).first->second.values;
}

std::vector<double> BatchExecutor::AggregateFromMaterialized(
    AggFunction fn, const MaterializedValues& m) {
  const size_t n_groups = m.present.size();
  std::vector<double> feature(n_groups, Nan());
  for (size_t g = 0; g < n_groups; ++g) {
    if (m.present[g] == 0) continue;
    feature[g] = ComputeAggregate(fn, m.flat.data() + m.offsets[g],
                                  m.offsets[g + 1] - m.offsets[g]);
  }
  return feature;
}

Result<BatchExecutor::PlannedCandidate> BatchExecutor::Prepare(
    const AggQuery& q, const Table& training, const Table& relevant,
    const std::string& bucket_key, bool shared_bucket) {
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  PlannedCandidate p;
  p.query = &q;
  FEAT_ASSIGN_OR_RETURN(GroupEntry * entry, GetGroupEntry(q.group_keys, relevant));
  if (!entry->has_train_map || entry->train_map.size() != training.num_rows()) {
    FEAT_ASSIGN_OR_RETURN(entry->train_map,
                          entry->index.MapTrainingRows(training, relevant));
    entry->has_train_map = true;
  }
  p.entry = entry;

  // Candidates that differ only in agg function share one materialization;
  // a bucket hit carries the selection baked in, so the kernel needs
  // neither mask nor view (resolved before the mask to spare a mask
  // rebuild when the mask cache evicted it in the meantime).
  if (!q.agg_attr.empty()) {
    auto mat_it = mat_cache_.find(bucket_key);
    if (mat_it != mat_cache_.end()) {
      mat_it->second.used_epoch = epoch_;
      p.mat = &mat_it->second.values;
      return p;
    }
  }
  FEAT_ASSIGN_OR_RETURN(p.mask, BuildSelectionMask(q, relevant));

  // COUNT(*) candidates have no agg attribute: they stream presence counts
  // off the bitset and group ids alone, reading no value view at all.
  if (q.agg_attr.empty()) return p;

  // Until a bucket is materialized, streaming-family aggregates take the
  // one-pass kernel (no flat array needed).
  if (IsStreamingAgg(q.agg) && !shared_bucket) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<double>* view,
                          GetValueView(q.agg_attr, relevant));
    p.view = view->data();
    return p;
  }
  FEAT_ASSIGN_OR_RETURN(p.mat, GetMaterialized(bucket_key, entry->index, p.mask,
                                               q.agg_attr, relevant));
  return p;
}

std::vector<double> BatchExecutor::ComputeColumn(const PlannedCandidate& p) {
  const std::vector<double> per_group =
      p.mat != nullptr
          ? AggregateFromMaterialized(p.query->agg, *p.mat)
          : AggregateStreaming(p.query->agg, p.entry->index, p.mask, p.view,
                               nullptr);
  const std::vector<uint32_t>& train_map = p.entry->train_map;
  std::vector<double> out(train_map.size(), Nan());
  for (size_t row = 0; row < out.size(); ++row) {
    const uint32_t g = train_map[row];
    if (g != kNoGroup) out[row] = per_group[g];
  }
  return out;
}

Result<std::vector<double>> BatchExecutor::ComputeFeatureColumn(
    const AggQuery& q, const Table& training, const Table& relevant) {
  ++epoch_;
  FEAT_ASSIGN_OR_RETURN(PlannedCandidate p,
                        Prepare(q, training, relevant, BucketKey(q),
                                /*shared_bucket=*/false));
  return ComputeColumn(p);
}

Result<std::vector<std::vector<double>>> BatchExecutor::EvaluateMany(
    const std::vector<AggQuery>& queries, const Table& training,
    const Table& relevant) {
  ++epoch_;
  WallTimer timer;

  // ---- Sequential prepare phase: every cache write happens here, on one
  // thread, before any kernel runs — the fan-out below is read-only. ----
  // Buckets shared by several candidates pay one materialization and serve
  // every member from flat slices; singleton buckets keep the cheaper
  // streaming kernel for streaming-family aggregates.
  std::vector<std::string> bucket_keys;
  bucket_keys.reserve(queries.size());
  std::unordered_map<std::string, int> bucket_counts;
  for (const AggQuery& q : queries) {
    bucket_keys.push_back(BucketKey(q));
    ++bucket_counts[bucket_keys.back()];
  }
  std::vector<PlannedCandidate> planned;
  planned.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const bool shared_bucket = bucket_counts[bucket_keys[i]] > 1;
    FEAT_ASSIGN_OR_RETURN(
        PlannedCandidate p,
        Prepare(queries[i], training, relevant, bucket_keys[i], shared_bucket));
    planned.push_back(p);
  }
  prepare_seconds_ = timer.Seconds();

  // ---- Fan-out phase: independent pure kernels into pre-sized slots, so
  // results are deterministic and thread-count-independent. ----
  timer.Restart();
  std::vector<std::vector<double>> out(queries.size());
  auto run_one = [&](size_t i) { out[i] = ComputeColumn(planned[i]); };
  if (pool_ != nullptr) {
    pool_->ParallelFor(planned.size(), run_one);
  } else {
    for (size_t i = 0; i < planned.size(); ++i) run_one(i);
  }
  aggregate_seconds_ = timer.Seconds();
  return out;
}

Result<Table> BatchExecutor::ExecuteAggQuery(const AggQuery& q,
                                             const Table& relevant) {
  ++epoch_;
  FEAT_RETURN_NOT_OK(q.Validate(relevant));
  FEAT_ASSIGN_OR_RETURN(GroupEntry * entry, GetGroupEntry(q.group_keys, relevant));
  FEAT_ASSIGN_OR_RETURN(const Bitset* mask, BuildSelectionMask(q, relevant));
  const double* view = nullptr;
  if (!q.agg_attr.empty()) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<double>* view_ptr,
                          GetValueView(q.agg_attr, relevant));
    view = view_ptr->data();
  }
  std::vector<uint32_t> first_selected;
  std::vector<double> per_group =
      AggregateStreaming(q.agg, entry->index, mask, view, &first_selected);

  // The legacy path emitted groups in first-seen order among *filtered*
  // rows with the first matching row as representative; sorting surviving
  // groups by their first selected row reproduces both exactly.
  std::vector<uint32_t> survivors;
  survivors.reserve(first_selected.size());
  for (uint32_t g = 0; g < first_selected.size(); ++g) {
    if (first_selected[g] != kNoGroup) survivors.push_back(g);
  }
  std::sort(survivors.begin(), survivors.end(),
            [&](uint32_t a, uint32_t b) {
              return first_selected[a] < first_selected[b];
            });

  std::vector<uint32_t> representatives;
  representatives.reserve(survivors.size());
  Column feature(DataType::kDouble);
  feature.Reserve(survivors.size());
  for (uint32_t g : survivors) {
    representatives.push_back(first_selected[g]);
    if (std::isnan(per_group[g])) {
      feature.AppendNull();
    } else {
      feature.AppendDouble(per_group[g]);
    }
  }

  Table out;
  for (const auto& k : q.group_keys) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(k));
    FEAT_RETURN_NOT_OK(out.AddColumn(k, col->Take(representatives)));
  }
  FEAT_RETURN_NOT_OK(out.AddColumn("feature", std::move(feature)));
  return out;
}

}  // namespace featlib

#pragma once

/// \file artifact_store.h
/// \brief Sharded cache of the shared artifacts the candidate-evaluation
/// planner reuses across candidates and batches.
///
/// Middle layer of the planner / store / kernel split. The store holds four
/// kind-shards, each with its own map, byte accounting, and eviction policy:
///
///   - group shard:  GroupIndex + training-row map per group-key set
///                   (never evicted: one per key set, tiny, reused forever),
///   - mask shard:   word-packed selection Bitsets per WHERE predicate and
///                   per predicate conjunction (byte-capped),
///   - view shard:   numeric value views (NaN iff null) per agg attribute
///                   (never evicted: one per column),
///   - mat shard:    bucket materializations per (group keys, predicates,
///                   agg attribute) bucket (byte-capped).
///
/// **Build-then-publish ownership.** The store itself never constructs an
/// artifact. The planner looks artifacts up (Find*), builds the missing ones
/// *off to the side* — on the ThreadPool, independent artifacts in parallel —
/// and then publishes the finished values (Publish*) from a single thread.
/// Because every map write happens inside a sequential publish step, the
/// shards need no locks, and the fan-out phase can read published artifacts
/// through raw const pointers: std::unordered_map never invalidates element
/// pointers on insert/rehash, and the epoch-pinned eviction below never
/// erases an entry the current batch referenced.
///
/// **Epoch pinning.** BeginEpoch() opens a batch; every Find hit and every
/// Publish stamps the entry with the current epoch. When a byte-capped shard
/// overflows, only entries from *older* epochs are evicted, so pointers held
/// by in-flight PlannedCandidates stay valid and a running batch can never
/// thrash its own working set (the shard may temporarily exceed its cap
/// instead).
///
/// Thread-compatibility: Find/Publish/BeginEpoch must be called from one
/// thread at a time (the planner's coordinator thread); published artifacts
/// may be read concurrently from any number of threads.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/bitset.h"
#include "query/group_index.h"
#include "query/kernels.h"

namespace featlib {

class ArtifactStore {
 public:
  /// A group-key-set artifact: the dense group-id index plus the (lazily
  /// attached) training-row map.
  struct GroupArtifact {
    GroupIndex index;
    bool has_train_map = false;
    std::vector<uint32_t> train_map;  // training row -> group id
  };

  ArtifactStore() = default;
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;
  // Movable so owners (QueryPlanner, FeatureEvaluator) stay movable.
  ArtifactStore(ArtifactStore&&) = default;
  ArtifactStore& operator=(ArtifactStore&&) = default;

  /// Opens a new batch: entries stamped from here on are pinned against
  /// eviction until the next BeginEpoch.
  void BeginEpoch() { ++epoch_; }

  /// \name Lookup (coordinator thread). A hit stamps the entry with the
  /// current epoch; a miss returns nullptr.
  /// @{
  GroupArtifact* FindGroup(const std::string& key);
  const Bitset* FindMask(const std::string& key);
  const std::vector<double>* FindView(const std::string& attr);
  const MaterializedValues* FindMaterialized(const std::string& key);
  /// @}

  /// \name Publish (coordinator thread, after the build completed).
  /// Returns the stable store-owned pointer. Byte-capped shards evict
  /// unpinned entries first; `is_conjunction` separates the single-predicate
  /// and conjunction build counters.
  /// @{
  GroupArtifact* PublishGroup(const std::string& key, GroupIndex index);
  /// Attaches/overwrites the training-row map of a published group artifact.
  void PublishTrainMap(GroupArtifact* group, std::vector<uint32_t> train_map);
  const Bitset* PublishMask(const std::string& key, Bitset bits,
                            bool is_conjunction);
  const std::vector<double>* PublishView(const std::string& attr,
                                         std::vector<double> view);
  const MaterializedValues* PublishMaterialized(const std::string& key,
                                                MaterializedValues values);
  /// @}

  /// \name Shard caps (tests shrink them to force eviction).
  /// @{
  void set_mask_cache_cap_bytes(size_t cap) { mask_cap_bytes_ = cap; }
  void set_mat_cache_cap_bytes(size_t cap) { mat_cap_bytes_ = cap; }
  /// @}

  /// \name Introspection (tests and benches).
  /// @{
  size_t num_group_builds() const { return group_builds_; }
  size_t num_train_map_builds() const { return train_map_builds_; }
  /// Single-predicate mask publishes (conjunctions counted separately).
  size_t num_mask_builds() const { return mask_builds_; }
  size_t num_conjunction_builds() const { return conjunction_builds_; }
  size_t num_view_builds() const { return view_builds_; }
  size_t num_materializations() const { return materializations_; }
  /// Entries evicted so far (mask + mat shards). Entries referenced by the
  /// current batch are pinned and never evicted mid-batch.
  size_t num_evictions() const { return num_evictions_; }
  size_t mask_cache_bytes() const { return mask_bytes_; }
  size_t mat_cache_bytes() const { return mat_bytes_; }
  uint64_t epoch() const { return epoch_; }
  /// @}

 private:
  struct MaskEntry {
    Bitset bits;
    uint64_t used_epoch = 0;  // == epoch_ => pinned by the current batch
  };
  struct MatEntry {
    MaterializedValues values;
    size_t bytes = 0;
    uint64_t used_epoch = 0;
  };

  /// Evict unpinned (not used this epoch) mask-shard entries until
  /// `incoming` more bytes fit under the cap, or only pinned entries remain
  /// (the shard may then temporarily exceed the cap rather than thrash the
  /// running batch).
  void EvictMasksFor(size_t incoming);
  void EvictMaterializedFor(size_t incoming);

  std::unordered_map<std::string, GroupArtifact> group_shard_;
  std::unordered_map<std::string, MaskEntry> mask_shard_;
  size_t mask_bytes_ = 0;
  size_t mask_cap_bytes_ = 64u << 20;
  std::unordered_map<std::string, std::vector<double>> view_shard_;
  std::unordered_map<std::string, MatEntry> mat_shard_;
  size_t mat_bytes_ = 0;
  size_t mat_cap_bytes_ = 128u << 20;

  /// Bumped at every BeginEpoch; hits and publishes stamp their entry, so
  /// "used_epoch == epoch_" marks entries the in-flight batch depends on.
  uint64_t epoch_ = 0;

  size_t group_builds_ = 0;
  size_t train_map_builds_ = 0;
  size_t mask_builds_ = 0;
  size_t conjunction_builds_ = 0;
  size_t view_builds_ = 0;
  size_t materializations_ = 0;
  size_t num_evictions_ = 0;
};

}  // namespace featlib

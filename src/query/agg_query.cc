#include "query/agg_query.h"

#include <cmath>

#include "common/str_util.h"

namespace featlib {

std::string AggQuery::ToSql(const std::string& relation_name,
                            const Table& schema_of) const {
  std::string keys = StrJoin(group_keys, ", ");
  // An empty agg attribute renders as COUNT(*) (row counting, Validate
  // restricts it to kCount).
  const std::string attr = agg_attr.empty() ? "*" : agg_attr;
  std::string out = "SELECT " + keys + ", " + AggFunctionName(agg) + "(" +
                    attr + ") AS feature\nFROM " + relation_name;
  std::vector<std::string> conjuncts;
  for (const Predicate& p : predicates) {
    if (p.IsTrivial()) continue;
    DataType type = DataType::kDouble;
    auto col = schema_of.GetColumn(p.attr);
    if (col.ok()) type = col.value()->type();
    conjuncts.push_back(p.ToSql(type));
  }
  if (!conjuncts.empty()) {
    out += "\nWHERE " + StrJoin(conjuncts, " AND ");
  }
  out += "\nGROUP BY " + keys;
  return out;
}

std::string AggQuery::CacheKey() const {
  std::string out = AggFunctionName(agg);
  out += "(" + agg_attr + ")|k=" + StrJoin(group_keys, ",") + "|";
  for (const Predicate& p : predicates) {
    if (p.IsTrivial()) continue;
    out += p.CacheKey();
    out += ";";
  }
  return out;
}

Status AggQuery::Validate(const Table& relevant) const {
  if (group_keys.empty()) {
    return Status::InvalidArgument("query has no group-by keys");
  }
  if (agg_attr.empty()) {
    // COUNT(*): row counting needs no attribute; every other aggregate does.
    if (agg != AggFunction::kCount) {
      return Status::InvalidArgument(
          StrFormat("%s requires an aggregation attribute (only COUNT "
                    "supports the attribute-less COUNT(*) form)",
                    AggFunctionName(agg)));
    }
  } else {
    auto agg_col = relevant.GetColumn(agg_attr);
    if (!agg_col.ok()) {
      return Status::InvalidArgument(
          "aggregation attribute not in relevant table: " + agg_attr);
    }
    if (agg_col.value()->type() == DataType::kString &&
        !SupportsCategorical(agg)) {
      return Status::InvalidArgument(
          StrFormat("%s is not defined on categorical attribute %s",
                    AggFunctionName(agg), agg_attr.c_str()));
    }
  }
  for (const auto& k : group_keys) {
    if (!relevant.HasColumn(k)) {
      return Status::InvalidArgument("group key not in relevant table: " + k);
    }
  }
  for (const Predicate& p : predicates) {
    if (p.IsTrivial()) continue;
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(p.attr));
    const bool range_type = IsRangeType(col->type());
    if (p.kind == Predicate::Kind::kRange && !range_type) {
      return Status::InvalidArgument("range predicate on categorical attribute " +
                                     p.attr);
    }
    if (p.kind == Predicate::Kind::kEquals && range_type &&
        col->type() != DataType::kInt64) {
      return Status::InvalidArgument(
          "equality predicate on continuous attribute " + p.attr);
    }
  }
  return Status::OK();
}

}  // namespace featlib

#pragma once

/// \file kernels.h
/// \brief The pure per-candidate aggregation kernels of the candidate-
/// evaluation fan-out.
///
/// This is the bottom layer of the planner / store / kernel split (see
/// docs/ARCHITECTURE.md): every function here is a pure function of const
/// inputs — no caches, no locks, no executor state — so the QueryPlanner can
/// run any number of them concurrently once the ArtifactStore has published
/// the shared artifacts they read. A `PlannedCandidate` is the complete,
/// resolved input of one candidate's kernel: raw pointers to store-owned
/// (epoch-pinned) or caller-owned const data.
///
/// Bit-identity contract: every accumulation visits selected rows in
/// ascending row order — the same order the original per-candidate executor
/// appended group row vectors in — so kernel outputs are byte-identical to
/// the recorded goldens (tests/golden/) at every thread count.

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "query/agg_query.h"
#include "query/bitset.h"
#include "query/group_index.h"

namespace featlib {

/// Grouped non-null values of one (group-key set, predicate set, agg
/// attribute) bucket, bucketed into one flat array in row order. Built at
/// most once per bucket: candidates that vary only the agg function (the
/// common shape of a template's pool) aggregate contiguous slices of the
/// same flat array. `flat` is allocated on a 64-byte boundary so the
/// vectorized backend's slice loads start cache-line-aligned; the values —
/// and therefore every aggregate over them — are byte-identical either way.
struct MaterializedValues {
  std::vector<uint32_t> present;   // selected rows per group (incl. nulls)
  std::vector<size_t> offsets;     // group id -> slice bounds (size G+1)
  AlignedVector<double> flat;      // non-null selected values, row order

  /// Heap footprint (ArtifactStore byte accounting). Counts *capacity*, not
  /// size — what the allocator actually handed out — so cache byte caps
  /// never undercount a buffer that grew geometrically; the aligned flat
  /// buffer additionally rounds up to its allocation granularity.
  size_t SizeBytes() const {
    const size_t flat_bytes = flat.capacity() * sizeof(double);
    const size_t aligned_flat =
        flat_bytes == 0
            ? 0
            : (flat_bytes + kKernelAlignment - 1) / kKernelAlignment *
                  kKernelAlignment;
    return aligned_flat + offsets.capacity() * sizeof(size_t) +
           present.capacity() * sizeof(uint32_t);
  }
};

/// Everything one candidate's kernel needs, resolved by the QueryPlanner's
/// prepare phase. All pointers are to store-owned (pinned) or const data;
/// the fan-out phase reads them without touching any cache.
struct PlannedCandidate {
  const AggQuery* query = nullptr;
  const GroupIndex* index = nullptr;
  const std::vector<uint32_t>* train_map = nullptr;  // training row -> group
  const double* view = nullptr;             // null iff COUNT(*) (no attr)
  const Bitset* mask = nullptr;             // null = all rows selected
  const MaterializedValues* mat = nullptr;  // aggregate from slices if set
};

/// The streaming kernel: per-group aggregate values for one candidate,
/// visiting selected rows in ascending order (word scan when `mask` is
/// set). `view` is the candidate's numeric value view; null only for
/// COUNT(*) candidates without an agg attribute, which then read no values
/// at all. Groups with no selected row get NaN. When `first_selected_row`
/// is non-null it receives, per group, the first row index passing the
/// filter (GroupIndex::kNoGroup when none does).
std::vector<double> AggregateStreaming(
    AggFunction fn, const GroupIndex& index, const Bitset* mask,
    const double* view, std::vector<uint32_t>* first_selected_row);

/// Per-group aggregates over a materialized bucket's flat slices.
std::vector<double> AggregateFromMaterialized(AggFunction fn,
                                              const MaterializedValues& m);

/// Builds one bucket materialization: the selected non-null values of
/// `view`, bucketed by group id into one flat array in ascending row order.
/// Pure — safe to run concurrently with other artifact builds.
MaterializedValues BuildMaterializedValues(const GroupIndex& index,
                                           const Bitset* mask,
                                           const double* view);

/// The full per-candidate fan-out kernel: per-group aggregation (from the
/// materialized bucket when `p.mat` is set, streaming otherwise) plus the
/// scatter through the training-row map. Requires `p.train_map`.
std::vector<double> ComputeFeatureKernel(const PlannedCandidate& p);

}  // namespace featlib

#include "query/relation_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "query/join.h"

namespace featlib {

Result<size_t> RelationGraph::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("table not registered: " + name);
}

Result<const Table*> RelationGraph::GetTable(const std::string& name) const {
  FEAT_ASSIGN_OR_RETURN(size_t i, IndexOf(name));
  return &tables_[i];
}

Status RelationGraph::AddTable(const std::string& name, Table table) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (IndexOf(name).ok()) {
    return Status::InvalidArgument("table already registered: " + name);
  }
  names_.push_back(name);
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status RelationGraph::AddLookup(const std::string& from, const std::string& to,
                                const std::vector<std::string>& keys) {
  if (keys.empty()) return Status::InvalidArgument("lookup edge needs key columns");
  if (from == to) {
    return Status::InvalidArgument("lookup edge cannot be a self-loop: " + from);
  }
  FEAT_ASSIGN_OR_RETURN(const Table* from_table, GetTable(from));
  FEAT_ASSIGN_OR_RETURN(const Table* to_table, GetTable(to));
  for (const std::string& k : keys) {
    if (!from_table->HasColumn(k)) {
      return Status::InvalidArgument("lookup key " + k + " missing from " + from);
    }
    if (!to_table->HasColumn(k)) {
      return Status::InvalidArgument("lookup key " + k + " missing from " + to);
    }
  }
  for (const LookupEdge& e : lookups_) {
    if (e.from == from && e.to == to) {
      return Status::InvalidArgument("duplicate lookup edge " + from + " -> " + to);
    }
  }
  lookups_.push_back(LookupEdge{from, to, keys});
  return Status::OK();
}

Status RelationGraph::AddFact(const std::string& base, const std::string& fact,
                              const std::vector<std::string>& fk_attrs) {
  if (fk_attrs.empty()) return Status::InvalidArgument("fact edge needs FK columns");
  FEAT_ASSIGN_OR_RETURN(const Table* base_table, GetTable(base));
  FEAT_ASSIGN_OR_RETURN(const Table* fact_table, GetTable(fact));
  for (const std::string& k : fk_attrs) {
    if (!base_table->HasColumn(k)) {
      return Status::InvalidArgument("FK " + k + " missing from base " + base);
    }
    if (!fact_table->HasColumn(k)) {
      return Status::InvalidArgument("FK " + k + " missing from fact " + fact);
    }
  }
  for (const FactEdge& e : facts_) {
    if (e.base == base && e.fact == fact) {
      return Status::InvalidArgument("duplicate fact edge " + base + " -> " + fact);
    }
  }
  facts_.push_back(FactEdge{base, fact, fk_attrs});
  return Status::OK();
}

Result<Table> RelationGraph::FlattenRelevant(
    const std::string& fact, std::vector<std::string>* join_keys_out) const {
  FEAT_ASSIGN_OR_RETURN(const Table* fact_table, GetTable(fact));
  Table out = *fact_table;

  // Breadth-first over lookup edges starting at the fact table. `visited`
  // carries the logical tables already folded in, so diamond shapes join a
  // dimension once and cycles are detected rather than looping.
  std::deque<std::string> frontier{fact};
  std::unordered_set<std::string> visited{fact};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const LookupEdge& e : lookups_) {
      if (e.from != current) continue;
      if (visited.count(e.to) > 0) {
        // Either a diamond (fine, already joined) or a cycle back to the
        // fact table (an error: the fact cannot be its own dimension).
        if (e.to == fact) {
          return Status::InvalidArgument("lookup cycle back to fact table " + fact);
        }
        continue;
      }
      FEAT_ASSIGN_OR_RETURN(const Table* dim, GetTable(e.to));
      // Keys resolved against `out`: a second-hop dimension's keys come
      // from the previously joined dimension's columns.
      for (const std::string& k : e.keys) {
        if (!out.HasColumn(k)) {
          return Status::InvalidArgument("lookup key " + k +
                                         " not present in flattened table when joining " +
                                         e.to);
        }
      }
      FEAT_ASSIGN_OR_RETURN(out, LeftJoinUnique(out, *dim, e.keys, e.to + "_"));
      if (join_keys_out != nullptr) {
        for (const std::string& k : e.keys) {
          if (std::find(join_keys_out->begin(), join_keys_out->end(), k) ==
              join_keys_out->end()) {
            join_keys_out->push_back(k);
          }
        }
      }
      visited.insert(e.to);
      frontier.push_back(e.to);
    }
  }
  return out;
}

Result<std::vector<RelevantScenario>> RelationGraph::BuildScenarios(
    const std::string& base) const {
  FEAT_RETURN_NOT_OK(GetTable(base).status());
  std::vector<RelevantScenario> out;
  for (const FactEdge& e : facts_) {
    if (e.base != base) continue;
    RelevantScenario scenario;
    scenario.name = e.fact;
    scenario.fk_attrs = e.fk_attrs;
    FEAT_ASSIGN_OR_RETURN(scenario.relevant,
                          FlattenRelevant(e.fact, &scenario.join_keys));
    out.push_back(std::move(scenario));
  }
  if (out.empty()) {
    return Status::NotFound("no fact tables declared for base " + base);
  }
  return out;
}

}  // namespace featlib

#pragma once

/// \file join.h
/// \brief Hash joins for preparing relevant tables.
///
/// §III of the paper reduces richer schemas to the (D, R) scenario: deep-
/// layer relationships are handled "by joining all the tables into one
/// relevant table" (e.g. Instacart's order/product/department tables), and
/// many-to-one lookups (product -> department) are direct joins. These
/// helpers implement that preparation step.

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// \brief Left join: every `left` row, extended with the matching `right`
/// row's non-key columns (NULL when unmatched).
///
/// `right` must be unique on the key columns (many-to-one / one-to-one
/// lookup join); duplicate right keys are an error — for one-to-many
/// expansion use InnerJoinExpand. Key columns must exist on both sides with
/// compatible types; right-side columns whose names collide with left-side
/// ones get a `right_prefix`.
Result<Table> LeftJoinUnique(const Table& left, const Table& right,
                             const std::vector<std::string>& keys,
                             const std::string& right_prefix = "r_");

/// \brief Inner join producing one output row per matching (left, right)
/// pair — the one-to-many expansion used to flatten log tables against
/// dimension tables before FeatAug runs.
Result<Table> InnerJoinExpand(const Table& left, const Table& right,
                              const std::vector<std::string>& keys,
                              const std::string& right_prefix = "r_");

}  // namespace featlib

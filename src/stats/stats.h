#pragma once

/// \file stats.h
/// \brief Statistical scores used as low-cost proxies (§V.C, §VI.C Opt. 1,
/// Table VIII) and as feature-selector criteria (Featuretools+X baselines).
///
/// All feature/label scores follow the convention "higher = stronger
/// dependence". Rows where the feature is NaN are imputed to the feature's
/// non-NaN mean before scoring (matching the treatment in the ML pipeline).

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace featlib {

/// Arithmetic mean of `v` (0 for empty).
double Mean(const std::vector<double>& v);

/// Population variance of `v` (0 for empty).
double Variance(const std::vector<double>& v);

/// Pearson correlation in [-1, 1]; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

/// Average ranks (ties share the mean rank), 1-based.
std::vector<double> RankData(const std::vector<double>& v);

/// Spearman's rank correlation (Pearson over ranks).
double SpearmanCorrelation(const std::vector<double>& x, const std::vector<double>& y);

/// Equi-width discretization of `v` into `bins` buckets (NaN -> own bucket
/// `bins`). Constant vectors map to bucket 0.
std::vector<int> Discretize(const std::vector<double>& v, int bins);

/// Equi-frequency (rank-based) discretization: bucket = floor(rank * bins /
/// n), ties share the bucket of their average rank, NaN -> bucket `bins`.
/// Robust to the heavy-tailed aggregates SUM/VAR produce, where equi-width
/// binning collapses most rows into one bucket and flattens MI.
std::vector<int> DiscretizeQuantile(const std::vector<double>& v, int bins);

/// \brief Mutual information (nats) between a continuous feature and a label.
///
/// The feature is *quantile*-binned into min(32, ceil(sqrt(n))) buckets
/// (NaN rows keep their own bucket so predicate coverage itself can carry
/// signal); a classification label is used as-is, a regression label is
/// equi-width binned (set `label_is_discrete = false`). This is the
/// low-cost proxy the paper plugs into the warm-up phase and QTI
/// Optimization 1. See bench_ablation_design for the quantile-vs-equi-width
/// comparison behind this choice.
double MutualInformation(const std::vector<double>& feature,
                         const std::vector<double>& label,
                         bool label_is_discrete);

/// Mutual information between two pre-discretized variables.
double DiscreteMutualInformation(const std::vector<int>& x, const std::vector<int>& y);

/// Shannon entropy (nats) of a discrete variable.
double DiscreteEntropy(const std::vector<int>& x);

/// \brief Chi-square statistic between a (binned) feature and a discrete
/// class label; higher means stronger association. Classification only.
double ChiSquareScore(const std::vector<double>& feature,
                      const std::vector<double>& label);

/// \brief Gini-impurity reduction of the class label from binning the
/// feature (weighted impurity decrease). Classification only.
double GiniScore(const std::vector<double>& feature, const std::vector<double>& label);

/// Replaces NaNs in `v` with the mean of the non-NaN entries (0 if all NaN).
std::vector<double> ImputeNanWithMean(const std::vector<double>& v);

/// |Spearman| wrapper with NaN imputation; the "SC" proxy of Table VIII.
double SpearmanProxy(const std::vector<double>& feature,
                     const std::vector<double>& label);

}  // namespace featlib

#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace featlib {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  FEAT_CHECK(x.size() == y.size(), "Pearson: size mismatch");
  const size_t n = x.size();
  if (n == 0) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> RankData(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  FEAT_CHECK(x.size() == y.size(), "Spearman: size mismatch");
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(RankData(x), RankData(y));
}

std::vector<int> Discretize(const std::vector<double>& v, int bins) {
  FEAT_CHECK(bins >= 1, "Discretize needs bins >= 1");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double x : v) {
    if (std::isnan(x)) continue;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::vector<int> out(v.size(), 0);
  const bool degenerate = !(lo < hi);
  for (size_t i = 0; i < v.size(); ++i) {
    if (std::isnan(v[i])) {
      out[i] = bins;  // NaN gets its own bucket
    } else if (degenerate) {
      out[i] = 0;
    } else {
      int b = static_cast<int>((v[i] - lo) / (hi - lo) * bins);
      if (b >= bins) b = bins - 1;
      if (b < 0) b = 0;
      out[i] = b;
    }
  }
  return out;
}

std::vector<int> DiscretizeQuantile(const std::vector<double>& v, int bins) {
  FEAT_CHECK(bins >= 1, "DiscretizeQuantile needs bins >= 1");
  const size_t n = v.size();
  std::vector<int> out(n, 0);
  std::vector<size_t> valid_rows;
  valid_rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(v[i])) {
      out[i] = bins;
    } else {
      valid_rows.push_back(i);
    }
  }
  if (valid_rows.empty()) return out;
  std::vector<double> values;
  values.reserve(valid_rows.size());
  for (size_t i : valid_rows) values.push_back(v[i]);
  const std::vector<double> ranks = RankData(values);  // 1-based, tie-averaged
  const double scale = static_cast<double>(bins) / static_cast<double>(values.size());
  for (size_t j = 0; j < valid_rows.size(); ++j) {
    int b = static_cast<int>((ranks[j] - 1.0) * scale);
    if (b >= bins) b = bins - 1;
    if (b < 0) b = 0;
    out[valid_rows[j]] = b;
  }
  return out;
}

double DiscreteEntropy(const std::vector<int>& x) {
  if (x.empty()) return 0.0;
  std::unordered_map<int, size_t> counts;
  for (int v : x) ++counts[v];
  const double n = static_cast<double>(x.size());
  double h = 0.0;
  for (const auto& [v, c] : counts) {
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

double DiscreteMutualInformation(const std::vector<int>& x,
                                 const std::vector<int>& y) {
  FEAT_CHECK(x.size() == y.size(), "MI: size mismatch");
  if (x.empty()) return 0.0;
  const double n = static_cast<double>(x.size());
  std::unordered_map<int, size_t> cx;
  std::unordered_map<int, size_t> cy;
  std::unordered_map<int64_t, size_t> cxy;
  for (size_t i = 0; i < x.size(); ++i) {
    ++cx[x[i]];
    ++cy[y[i]];
    ++cxy[(static_cast<int64_t>(x[i]) << 32) ^
          static_cast<int64_t>(static_cast<uint32_t>(y[i]))];
  }
  double mi = 0.0;
  for (const auto& [key, c] : cxy) {
    const int xi = static_cast<int>(key >> 32);
    const int yi = static_cast<int>(static_cast<uint32_t>(key & 0xffffffffLL));
    const double pxy = static_cast<double>(c) / n;
    const double px = static_cast<double>(cx[xi]) / n;
    const double py = static_cast<double>(cy[yi]) / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  return mi < 0.0 ? 0.0 : mi;
}

namespace {

int DefaultBins(size_t n) {
  const int by_sqrt = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max(2, std::min(32, by_sqrt));
}

std::vector<int> LabelBuckets(const std::vector<double>& label,
                              bool label_is_discrete, int bins) {
  if (label_is_discrete) {
    std::vector<int> out(label.size());
    for (size_t i = 0; i < label.size(); ++i) {
      out[i] = static_cast<int>(std::llround(label[i]));
    }
    return out;
  }
  return Discretize(label, bins);
}

}  // namespace

double MutualInformation(const std::vector<double>& feature,
                         const std::vector<double>& label,
                         bool label_is_discrete) {
  FEAT_CHECK(feature.size() == label.size(), "MI: size mismatch");
  if (feature.size() < 2) return 0.0;
  const int bins = DefaultBins(feature.size());
  // Quantile bins on the feature: missing rows keep their own bucket so the
  // predicate's coverage pattern itself can carry information.
  const std::vector<int> fx = DiscretizeQuantile(feature, bins);
  const std::vector<int> fy = LabelBuckets(label, label_is_discrete, bins);
  return DiscreteMutualInformation(fx, fy);
}

double ChiSquareScore(const std::vector<double>& feature,
                      const std::vector<double>& label) {
  FEAT_CHECK(feature.size() == label.size(), "Chi2: size mismatch");
  const size_t n = feature.size();
  if (n < 2) return 0.0;
  const int bins = DefaultBins(n);
  const std::vector<int> fx = Discretize(ImputeNanWithMean(feature), bins);
  const std::vector<int> fy = LabelBuckets(label, /*label_is_discrete=*/true, bins);
  std::unordered_map<int, double> row_tot;
  std::unordered_map<int, double> col_tot;
  std::unordered_map<int64_t, double> cell;
  for (size_t i = 0; i < n; ++i) {
    row_tot[fx[i]] += 1.0;
    col_tot[fy[i]] += 1.0;
    cell[(static_cast<int64_t>(fx[i]) << 32) ^
         static_cast<int64_t>(static_cast<uint32_t>(fy[i]))] += 1.0;
  }
  double chi2 = 0.0;
  const double total = static_cast<double>(n);
  for (const auto& [rx, rc] : row_tot) {
    for (const auto& [cy, cc] : col_tot) {
      const double expected = rc * cc / total;
      if (expected <= 0.0) continue;
      const int64_t key = (static_cast<int64_t>(rx) << 32) ^
                          static_cast<int64_t>(static_cast<uint32_t>(cy));
      auto it = cell.find(key);
      const double observed = it == cell.end() ? 0.0 : it->second;
      const double d = observed - expected;
      chi2 += d * d / expected;
    }
  }
  return chi2;
}

namespace {

double GiniImpurityOfCounts(const std::unordered_map<int, size_t>& counts,
                            double n) {
  if (n <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const auto& [cls, c] : counts) {
    const double p = static_cast<double>(c) / n;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

double GiniScore(const std::vector<double>& feature,
                 const std::vector<double>& label) {
  FEAT_CHECK(feature.size() == label.size(), "Gini: size mismatch");
  const size_t n = feature.size();
  if (n < 2) return 0.0;
  const int bins = DefaultBins(n);
  const std::vector<int> fx = Discretize(ImputeNanWithMean(feature), bins);
  std::unordered_map<int, size_t> overall;
  std::unordered_map<int, std::unordered_map<int, size_t>> per_bin;
  std::unordered_map<int, size_t> bin_sizes;
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(std::llround(label[i]));
    ++overall[cls];
    ++per_bin[fx[i]][cls];
    ++bin_sizes[fx[i]];
  }
  const double base = GiniImpurityOfCounts(overall, static_cast<double>(n));
  double weighted = 0.0;
  for (const auto& [bin, counts] : per_bin) {
    const double bn = static_cast<double>(bin_sizes[bin]);
    weighted += bn / static_cast<double>(n) * GiniImpurityOfCounts(counts, bn);
  }
  const double reduction = base - weighted;
  return reduction < 0.0 ? 0.0 : reduction;
}

std::vector<double> ImputeNanWithMean(const std::vector<double>& v) {
  double sum = 0.0;
  size_t count = 0;
  for (double x : v) {
    if (!std::isnan(x)) {
      sum += x;
      ++count;
    }
  }
  const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  std::vector<double> out = v;
  for (double& x : out) {
    if (std::isnan(x)) x = mean;
  }
  return out;
}

double SpearmanProxy(const std::vector<double>& feature,
                     const std::vector<double>& label) {
  return std::fabs(SpearmanCorrelation(ImputeNanWithMean(feature), label));
}

}  // namespace featlib

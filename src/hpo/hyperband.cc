#include "hpo/hyperband.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace featlib {

Hyperband::Hyperband(SearchSpace space, HyperbandOptions options)
    : space_(std::move(space)), options_(options), rng_(options.seed) {
  FEAT_CHECK(options_.eta > 1.0, "Hyperband eta must exceed 1");
  FEAT_CHECK(options_.min_fidelity > 0.0 && options_.min_fidelity <= 1.0,
             "min_fidelity must lie in (0, 1]");
  // s_max = round(log_eta(1 / min_fidelity)): the number of halving steps
  // between the smallest rung and full fidelity.
  s_max_ = static_cast<int>(
      std::lround(std::log(1.0 / options_.min_fidelity) / std::log(options_.eta)));
  s_max_ = std::max(s_max_, 0);
  rung_observations_.resize(static_cast<size_t>(s_max_) + 1);
}

std::vector<double> Hyperband::RungFidelities() const {
  std::vector<double> out;
  for (int i = s_max_; i >= 0; --i) {
    out.push_back(std::min(1.0, std::pow(options_.eta, -i)));
  }
  return out;
}

void Hyperband::AppendObservationState(std::string* out) const {
  for (size_t rung = 0; rung < rung_observations_.size(); ++rung) {
    out->push_back('r');
    out->append(std::to_string(rung));
    out->push_back('\n');
    for (const Trial& t : rung_observations_[rung]) {
      for (double v : t.params) {
        AppendDoubleBits(v, out);
        out->push_back(' ');
      }
      out->push_back(':');
      AppendDoubleBits(t.loss, out);
      out->push_back('\n');
    }
  }
}

void Hyperband::WarmStart(const std::vector<Trial>& trials) {
  // Full-fidelity pool is the last rung.
  auto& pool = rung_observations_.back();
  pool.insert(pool.end(), trials.begin(), trials.end());
}

const std::vector<Trial>* Hyperband::ModelPool() const {
  const int min_points = options_.min_model_points > 0
                             ? options_.min_model_points
                             : static_cast<int>(space_.NumDims()) + 2;
  for (int i = static_cast<int>(rung_observations_.size()) - 1; i >= 0; --i) {
    if (rung_observations_[static_cast<size_t>(i)].size() >=
        static_cast<size_t>(min_points)) {
      return &rung_observations_[static_cast<size_t>(i)];
    }
  }
  return nullptr;
}

std::vector<ParamVector> Hyperband::ProposeBatch(int n) {
  std::vector<ParamVector> out;
  out.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (!options_.model_based || rng_.Uniform() < options_.random_fraction) {
      out.push_back(space_.Sample(&rng_));
      continue;
    }
    const std::vector<Trial>* pool = ModelPool();
    if (pool == nullptr) {
      out.push_back(space_.Sample(&rng_));
      continue;
    }
    // BOHB: a one-shot TPE proposal per slot, each with a fresh seed.
    // Deliberately *not* one shared SuggestBatch over the bracket:
    // independent samplers keep the initial configurations diverse, which
    // the successive-halving guarantee leans on; the batching win lives in
    // the rung evaluation, where a pool already exists naturally.
    TpeOptions tpe_options = options_.tpe;
    tpe_options.seed = rng_.NextU64();
    tpe_options.n_startup = 0;             // the pool *is* the startup data
    tpe_options.exploration_fraction = 0;  // random_fraction already covers it
    Tpe sampler(space_, tpe_options);
    sampler.WarmStart(*pool);
    out.push_back(sampler.Suggest());
  }
  return out;
}

Result<HyperbandResult> Hyperband::Run(const MultiFidelityObjective& objective) {
  return RunBatched(
      [&objective](const std::vector<ParamVector>& pool,
                   double fidelity) -> Result<std::vector<double>> {
        std::vector<double> losses;
        losses.reserve(pool.size());
        for (const ParamVector& v : pool) {
          FEAT_ASSIGN_OR_RETURN(double loss, objective(v, fidelity));
          losses.push_back(loss);
        }
        return losses;
      });
}

Result<HyperbandResult> Hyperband::RunBatched(
    const MultiFidelityBatchObjective& objective) {
  HyperbandResult result;
  const double eta = options_.eta;

  // Outer loop: brackets s = s_max, s_max-1, .., 0, then cycle, until the
  // budget runs out. Each bracket trades #configs against starting rung.
  int bracket_counter = 0;
  while (result.total_cost < options_.max_total_cost) {
    const int s = s_max_ - (bracket_counter % (s_max_ + 1));
    ++bracket_counter;
    ++result.brackets_run;

    // Initial configs and fidelity for this bracket (Li et al., Alg. 1).
    const int n0 = static_cast<int>(std::ceil(static_cast<double>(s_max_ + 1) /
                                              (s + 1) * std::pow(eta, s)));
    std::vector<FidelityTrial> rung;
    rung.reserve(static_cast<size_t>(n0));
    for (ParamVector& v : ProposeBatch(n0)) {
      rung.push_back(FidelityTrial{std::move(v), 0.0, 0.0});
    }

    // Successive halving: evaluate each rung as one pool, keep the best
    // 1/eta, raise fidelity. No observation lands between members of a
    // rung, so pooled evaluation is trajectory-identical to the sequential
    // loop it replaced.
    for (int i = 0; i <= s; ++i) {
      const double fidelity = std::min(1.0, std::pow(eta, i - s));
      const int rung_index = s_max_ - (s - i);  // 0 = smallest fidelity rung
      std::vector<ParamVector> pool;
      pool.reserve(rung.size());
      for (const FidelityTrial& t : rung) pool.push_back(t.params);
      FEAT_ASSIGN_OR_RETURN(std::vector<double> losses,
                            objective(pool, fidelity));
      if (losses.size() != rung.size()) {
        return Status::Internal("batch objective returned wrong pool size");
      }
      for (size_t k = 0; k < rung.size(); ++k) {
        FidelityTrial& t = rung[k];
        t.loss = losses[k];
        // Non-finite losses would corrupt the promotion sort; demote them.
        if (!std::isfinite(t.loss)) t.loss = kWorstLoss;
        t.fidelity = fidelity;
        result.trials.push_back(t);
        result.total_cost += fidelity;
        ++result.n_evals;
        rung_observations_[static_cast<size_t>(rung_index)].push_back(
            Trial{t.params, t.loss});
        if (fidelity >= 1.0) {
          result.full_fidelity_trials.push_back(Trial{t.params, t.loss});
        }
      }
      if (i == s) break;
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(std::floor(rung.size() / eta)));
      std::sort(rung.begin(), rung.end(),
                [](const FidelityTrial& a, const FidelityTrial& b) {
                  return a.loss < b.loss;
                });
      rung.resize(keep);
      if (result.total_cost >= options_.max_total_cost) break;
    }
    if (s_max_ == 0 && result.total_cost >= options_.max_total_cost) break;
  }

  // Best configuration: prefer reliable full-fidelity losses.
  const std::vector<Trial>* source = nullptr;
  if (!result.full_fidelity_trials.empty()) {
    source = &result.full_fidelity_trials;
  }
  if (source != nullptr) {
    const Trial* best = nullptr;
    for (const Trial& t : *source) {
      if (best == nullptr || t.loss < best->loss) best = &t;
    }
    result.best_params = best->params;
    result.best_loss = best->loss;
    result.has_best = true;
  } else if (!result.trials.empty()) {
    const FidelityTrial* best = nullptr;
    for (const FidelityTrial& t : result.trials) {
      if (best == nullptr || t.loss < best->loss) best = &t;
    }
    result.best_params = best->params;
    result.best_loss = best->loss;
    result.has_best = true;
  }
  return result;
}

}  // namespace featlib

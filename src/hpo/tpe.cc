#include "hpo/tpe.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

namespace featlib {

namespace {

constexpr double kLogFloor = -745.0;  // log of smallest positive double-ish

double SafeLog(double v) { return v > 0.0 ? std::log(v) : kLogFloor; }

/// Dirichlet-smoothed categorical estimator.
struct CatEstimator {
  std::vector<double> weights;

  CatEstimator(int n_choices, double prior_weight) {
    weights.assign(static_cast<size_t>(n_choices),
                   prior_weight / static_cast<double>(n_choices));
  }

  void Add(int choice) { weights[static_cast<size_t>(choice)] += 1.0; }

  double LogProb(int choice) const {
    double total = 0.0;
    for (double w : weights) total += w;
    return SafeLog(weights[static_cast<size_t>(choice)] / total);
  }

  int SampleChoice(Rng* rng) const {
    return static_cast<int>(rng->Categorical(weights));
  }
};

/// 1-D Parzen window over observed points plus a wide prior component
/// (Hyperopt-style adaptive bandwidths from neighbor spacing).
struct KdeEstimator {
  std::vector<double> points;
  std::vector<double> bandwidths;
  double lo, hi, prior_mu, prior_sigma, prior_weight;
  bool integer;

  KdeEstimator(std::vector<double> pts, double lo_in, double hi_in,
               double prior_weight_in, bool integer_in)
      : points(std::move(pts)),
        lo(lo_in),
        hi(hi_in),
        prior_weight(prior_weight_in),
        integer(integer_in) {
    const double range = std::max(hi - lo, 1e-12);
    prior_mu = 0.5 * (lo + hi);
    prior_sigma = range;
    std::sort(points.begin(), points.end());
    bandwidths.resize(points.size());
    const double min_bw =
        range / std::min<double>(100.0, static_cast<double>(points.size()) + 1.0);
    for (size_t i = 0; i < points.size(); ++i) {
      double left = i > 0 ? points[i] - points[i - 1] : range;
      double right = i + 1 < points.size() ? points[i + 1] - points[i] : range;
      double bw = std::max(left, right);
      bandwidths[i] = std::min(range, std::max(min_bw, bw));
    }
  }

  static double NormalPdf(double x, double mu, double sigma) {
    const double z = (x - mu) / sigma;
    return std::exp(-0.5 * z * z) / (sigma * 2.5066282746310002);
  }

  double LogPdf(double x) const {
    double total_weight = prior_weight;
    double density = prior_weight * NormalPdf(x, prior_mu, prior_sigma);
    for (size_t i = 0; i < points.size(); ++i) {
      density += NormalPdf(x, points[i], bandwidths[i]);
      total_weight += 1.0;
    }
    return SafeLog(density / total_weight);
  }

  double SampleValue(Rng* rng) const {
    const double total = prior_weight + static_cast<double>(points.size());
    double v;
    if (rng->Uniform() * total < prior_weight || points.empty()) {
      v = rng->Normal(prior_mu, prior_sigma);
    } else {
      const size_t i = static_cast<size_t>(rng->UniformInt(points.size()));
      v = rng->Normal(points[i], bandwidths[i]);
    }
    v = std::min(hi, std::max(lo, v));
    if (integer) v = std::round(v);
    return v;
  }
};

/// Combined per-dimension estimator (handles the optional-None mixture).
struct DimEstimator {
  const ParamDomain* domain;
  double p_none = 0.0;  // only for optional dims
  std::unique_ptr<CatEstimator> cat;
  std::unique_ptr<KdeEstimator> kde;

  DimEstimator(const ParamDomain& d, const std::vector<double>& observed,
               double prior_weight)
      : domain(&d) {
    if (d.kind == ParamDomain::Kind::kCategorical) {
      cat = std::make_unique<CatEstimator>(d.n_choices, prior_weight);
      for (double v : observed) {
        if (!IsNone(v)) cat->Add(static_cast<int>(std::llround(v)));
      }
      return;
    }
    std::vector<double> values;
    size_t none_count = 0;
    for (double v : observed) {
      if (IsNone(v)) {
        ++none_count;
      } else {
        values.push_back(v);
      }
    }
    if (d.kind == ParamDomain::Kind::kOptionalNumeric) {
      // Beta(1,1)-smoothed Bernoulli for the None indicator.
      p_none = (1.0 + static_cast<double>(none_count)) /
               (2.0 + static_cast<double>(observed.size()));
    }
    kde = std::make_unique<KdeEstimator>(std::move(values), d.lo, d.hi,
                                         prior_weight, d.integer);
  }

  double LogPdf(double v) const {
    if (domain->kind == ParamDomain::Kind::kCategorical) {
      return cat->LogProb(static_cast<int>(std::llround(v)));
    }
    if (domain->kind == ParamDomain::Kind::kOptionalNumeric) {
      if (IsNone(v)) return SafeLog(p_none);
      return SafeLog(1.0 - p_none) + kde->LogPdf(v);
    }
    return kde->LogPdf(v);
  }

  double Sample(Rng* rng) const {
    if (domain->kind == ParamDomain::Kind::kCategorical) {
      return static_cast<double>(cat->SampleChoice(rng));
    }
    if (domain->kind == ParamDomain::Kind::kOptionalNumeric &&
        rng->Bernoulli(p_none)) {
      return NoneValue();
    }
    return kde->SampleValue(rng);
  }
};

}  // namespace

Tpe::Tpe(SearchSpace space, TpeOptions options)
    : space_(std::move(space)), options_(options), rng_(options.seed) {}

void Tpe::Observe(const ParamVector& params, double loss) {
  FEAT_CHECK(params.size() == space_.NumDims(), "Observe: dim mismatch");
  // Non-finite losses (degenerate metrics, NaN aggregates) would corrupt
  // the good/bad quantile split's ordering; record them as worst-possible.
  if (!std::isfinite(loss)) loss = kWorstLoss;
  history_.push_back(Trial{params, loss});
}

ParamVector Tpe::Suggest() { return SuggestBatch(1).front(); }

std::vector<ParamVector> Tpe::SuggestBatch(int n) {
  FEAT_CHECK(n > 0, "SuggestBatch needs a positive pool size");
  std::vector<ParamVector> out(static_cast<size_t>(n));
  const size_t hist = history_.size();
  // Per-slot exploration decision in sequential order, so the RNG stream of
  // a size-1 batch is byte-for-byte the old Suggest() stream.
  std::vector<size_t> exploit_slots;
  for (int s = 0; s < n; ++s) {
    if (hist < static_cast<size_t>(options_.n_startup) ||
        rng_.Bernoulli(options_.exploration_fraction)) {
      out[static_cast<size_t>(s)] = space_.Sample(&rng_);
    } else {
      exploit_slots.push_back(static_cast<size_t>(s));
    }
  }
  if (exploit_slots.empty()) return out;

  // Split at the gamma quantile of losses.
  std::vector<size_t> order(hist);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return history_[a].loss < history_[b].loss;
  });
  const size_t n_good = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(options_.gamma * static_cast<double>(hist))));

  const size_t n_dims = space_.NumDims();
  std::vector<DimEstimator> good_est;
  std::vector<DimEstimator> bad_est;
  good_est.reserve(n_dims);
  bad_est.reserve(n_dims);
  std::vector<double> good_vals;
  std::vector<double> bad_vals;
  for (size_t d = 0; d < n_dims; ++d) {
    good_vals.clear();
    bad_vals.clear();
    for (size_t i = 0; i < hist; ++i) {
      const double v = history_[order[i]].params[d];
      if (i < n_good) {
        good_vals.push_back(v);
      } else {
        bad_vals.push_back(v);
      }
    }
    good_est.emplace_back(space_.dim(d), good_vals, options_.prior_weight);
    bad_est.emplace_back(space_.dim(d), bad_vals, options_.prior_weight);
  }

  // One shared candidate pool — n_candidates samples from l(x) per exploit
  // slot — ranked by log l - log g. stable_sort keeps the first-sampled of
  // any EI tie first, matching the strict ">" argmax of the sequential path.
  struct Scored {
    double score;
    ParamVector v;
  };
  const size_t pool_size = exploit_slots.size() *
                           static_cast<size_t>(std::max(1, options_.n_candidates));
  std::vector<Scored> pool;
  pool.reserve(pool_size);
  for (size_t c = 0; c < pool_size; ++c) {
    ParamVector candidate(n_dims);
    double score = 0.0;
    for (size_t d = 0; d < n_dims; ++d) {
      candidate[d] = good_est[d].Sample(&rng_);
      score += good_est[d].LogPdf(candidate[d]) - bad_est[d].LogPdf(candidate[d]);
    }
    pool.push_back(Scored{score, std::move(candidate)});
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<ParamVector> ranked;
  ranked.reserve(pool.size());
  for (Scored& s : pool) ranked.push_back(std::move(s.v));
  ScatterTopDistinct(std::move(ranked), exploit_slots, &out);
  return out;
}

}  // namespace featlib

#include "hpo/smac.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/tree.h"

namespace featlib {

Smac::Smac(SearchSpace space, SmacOptions options)
    : space_(std::move(space)), options_(options), rng_(options.seed) {}

void Smac::Observe(const ParamVector& params, double loss) {
  FEAT_CHECK(params.size() == space_.NumDims(), "Observe: dim mismatch");
  // See Tpe::Observe: non-finite losses are recorded as worst-possible so
  // the surrogate's ordering stays well-defined.
  if (!std::isfinite(loss)) loss = kWorstLoss;
  history_.push_back(Trial{params, loss});
}

std::vector<double> Smac::EncodeConfig(const ParamVector& v) const {
  std::vector<double> out;
  out.reserve(space_.NumDims() * 2);
  for (size_t d = 0; d < space_.NumDims(); ++d) {
    const ParamDomain& dom = space_.dim(d);
    if (dom.kind == ParamDomain::Kind::kOptionalNumeric) {
      const bool none = IsNone(v[d]);
      out.push_back(none ? 1.0 : 0.0);
      out.push_back(none ? 0.5 * (dom.lo + dom.hi) : v[d]);
    } else {
      out.push_back(v[d]);
    }
  }
  return out;
}

ParamVector Smac::Perturb(const ParamVector& base) {
  ParamVector out = base;
  const double resample_p =
      1.0 / static_cast<double>(std::max<size_t>(1, space_.NumDims()));
  for (size_t d = 0; d < space_.NumDims(); ++d) {
    const ParamDomain& dom = space_.dim(d);
    if (rng_.Bernoulli(resample_p)) {
      out[d] = dom.Sample(&rng_);
      continue;
    }
    // Numeric dims also receive a small jitter (SMAC's neighbourhood move).
    if (dom.kind != ParamDomain::Kind::kCategorical && !IsNone(out[d]) &&
        rng_.Bernoulli(0.5)) {
      const double width = dom.hi - dom.lo;
      out[d] = dom.Clip(out[d] +
                        rng_.Normal(0.0, options_.perturbation_scale * width));
    }
  }
  return out;
}

ParamVector Smac::Suggest() { return SuggestBatch(1).front(); }

std::vector<ParamVector> Smac::SuggestBatch(int n_batch) {
  FEAT_CHECK(n_batch > 0, "SuggestBatch needs a positive pool size");
  std::vector<ParamVector> out(static_cast<size_t>(n_batch));
  const size_t n = history_.size();
  // Per-slot exploration decision in sequential order, so the RNG stream of
  // a size-1 batch is byte-for-byte the old Suggest() stream.
  std::vector<size_t> exploit_slots;
  for (int s = 0; s < n_batch; ++s) {
    if (n < static_cast<size_t>(options_.n_startup) ||
        rng_.Bernoulli(options_.exploration_fraction)) {
      out[static_cast<size_t>(s)] = space_.Sample(&rng_);
    } else {
      exploit_slots.push_back(static_cast<size_t>(s));
    }
  }
  if (exploit_slots.empty()) return out;

  // Fit the surrogate forest once per batch on the full history (histories
  // are small: hundreds of configurations).
  Dataset train = Dataset::WithLabels({}, TaskKind::kRegression);
  train.n = n;
  train.y.resize(n);
  const size_t enc_d = EncodeConfig(history_[0].params).size();
  train.d = enc_d;
  train.x.resize(n * enc_d);
  for (size_t i = 0; i < n; ++i) {
    const auto enc = EncodeConfig(history_[i].params);
    std::copy(enc.begin(), enc.end(),
              train.x.begin() + static_cast<ptrdiff_t>(i * enc_d));
    train.y[i] = history_[i].loss;
  }
  for (size_t c = 0; c < enc_d; ++c) train.feature_names.push_back("");

  std::vector<uint32_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0u);
  std::vector<double> grad(n);
  for (size_t i = 0; i < n; ++i) grad[i] = -train.y[i];
  const std::vector<double> hess(n, 1.0);

  TreeOptions tree_options;
  tree_options.max_depth = 6;
  tree_options.min_samples_leaf = 2;
  tree_options.min_samples_split = 4;
  tree_options.lambda = 1e-6;
  tree_options.min_gain = 0.0;
  tree_options.max_features =
      std::max(1, static_cast<int>(std::sqrt(static_cast<double>(enc_d)) + 0.5));

  std::vector<GradientTree> forest;
  forest.reserve(static_cast<size_t>(options_.n_trees));
  for (int t = 0; t < options_.n_trees; ++t) {
    std::vector<uint32_t> rows(n);
    for (auto& r : rows) r = static_cast<uint32_t>(rng_.UniformInt(n));
    Rng tree_rng = rng_.Fork();
    GradientTree tree;
    tree.Fit(train, rows, grad, hess, tree_options, &tree_rng);
    forest.push_back(std::move(tree));
  }

  const Trial* incumbent = best();
  FEAT_CHECK(incumbent != nullptr, "Suggest after startup needs history");

  // Shared candidate pool — n_candidates per exploit slot, alternating
  // uniform draws and incumbent perturbations — ranked by the LCB
  // acquisition. stable_sort keeps the first-sampled of any tie first,
  // matching the strict "<" argmin of the sequential path.
  struct Scored {
    double acq;
    ParamVector v;
  };
  const size_t pool_size = exploit_slots.size() *
                           static_cast<size_t>(std::max(1, options_.n_candidates));
  std::vector<Scored> pool;
  pool.reserve(pool_size);
  Dataset probe = Dataset::WithLabels({0.0}, TaskKind::kRegression);
  probe.n = 1;
  probe.d = enc_d;
  probe.x.resize(enc_d);
  for (size_t c = 0; c < pool_size; ++c) {
    ParamVector candidate =
        c % 2 == 0 ? space_.Sample(&rng_) : Perturb(incumbent->params);
    const auto enc = EncodeConfig(candidate);
    std::copy(enc.begin(), enc.end(), probe.x.begin());
    double mean = 0.0;
    double sq = 0.0;
    for (const auto& tree : forest) {
      const double p = tree.PredictRow(probe, 0);
      mean += p;
      sq += p * p;
    }
    mean /= static_cast<double>(forest.size());
    const double var =
        std::max(0.0, sq / static_cast<double>(forest.size()) - mean * mean);
    const double acq = mean - options_.kappa * std::sqrt(var);  // LCB, minimize
    pool.push_back(Scored{acq, std::move(candidate)});
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.acq < b.acq;
                   });
  std::vector<ParamVector> ranked;
  ranked.reserve(pool.size());
  for (Scored& s : pool) ranked.push_back(std::move(s.v));
  ScatterTopDistinct(std::move(ranked), exploit_slots, &out);
  return out;
}

}  // namespace featlib

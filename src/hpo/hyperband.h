#pragma once

/// \file hyperband.h
/// \brief Hyperband (Li et al., JMLR'17) and BOHB (Falkner et al., ICML'18),
/// the early-stopping HPO speedups the paper's §II.D / §V Remark name as
/// alternatives to plain TPE.
///
/// Both allocate most evaluations at *reduced fidelity* — here, a model
/// trained on a subsample of the training split — and promote only the
/// top 1/eta configurations of each rung to the next (larger) fidelity.
/// Hyperband samples configurations uniformly; BOHB replaces the uniform
/// sampler with a TPE model fit on the largest fidelity that has enough
/// observations, which keeps Hyperband's any-time behaviour while gaining
/// TPE's sample efficiency.
///
/// The driver is budgeted in **full-evaluation equivalents**: evaluating at
/// fidelity f costs f, so `max_total_cost = 30` buys the same model-training
/// time as 30 conventional full-data evaluations.

#include <functional>
#include <vector>

#include "hpo/optimizer.h"
#include "hpo/tpe.h"

namespace featlib {

/// Loss of `params` evaluated at `fidelity` in (0, 1] (fraction of the
/// training data). Must be monotone in spirit: higher fidelity, less noise.
using MultiFidelityObjective =
    std::function<Result<double>(const ParamVector& params, double fidelity)>;

/// Losses of a whole rung's configurations at one fidelity. A rung is
/// evaluated with no intermediate observations, so handing the driver the
/// pool at once lets the objective share work across members (one
/// `EvaluateMany` pass over the pool's features) without changing the
/// successive-halving trajectory at all.
using MultiFidelityBatchObjective = std::function<Result<std::vector<double>>(
    const std::vector<ParamVector>& pool, double fidelity)>;

struct HyperbandOptions {
  /// Downsampling rate between successive rungs (>1; paper default 3).
  double eta = 3.0;
  /// Fidelity of the lowest rung; rung ladder is eta^-s, .., eta^-1, 1.
  double min_fidelity = 1.0 / 9.0;
  /// Stop once the summed fidelity cost reaches this many full evaluations.
  double max_total_cost = 30.0;
  /// BOHB: model-based sampling. False degrades to plain Hyperband.
  bool model_based = true;
  /// BOHB: fraction of proposals drawn uniformly regardless of the model,
  /// preserving Hyperband's worst-case guarantees.
  double random_fraction = 0.2;
  /// Minimum observations (at one fidelity) before the model kicks in;
  /// below it proposals are uniform. 0 = dims + 2 (the BOHB paper's rule).
  int min_model_points = 0;
  /// Sampler options for the BOHB TPE model.
  TpeOptions tpe;
  uint64_t seed = 42;
};

/// One evaluation at some rung.
struct FidelityTrial {
  ParamVector params;
  double fidelity = 1.0;
  double loss = 0.0;
};

struct HyperbandResult {
  /// Every evaluation performed, in execution order.
  std::vector<FidelityTrial> trials;
  /// The subset evaluated at fidelity 1.0 (reliable losses).
  std::vector<Trial> full_fidelity_trials;
  /// Best full-fidelity configuration (fall back: best any-fidelity).
  ParamVector best_params;
  double best_loss = 0.0;
  bool has_best = false;
  /// Summed fidelities (full-evaluation equivalents actually spent).
  double total_cost = 0.0;
  size_t n_evals = 0;
  int brackets_run = 0;
};

/// \brief Hyperband/BOHB driver over a SearchSpace. Minimizes loss.
///
/// Unlike Optimizer this is a driver, not a suggest/observe object: the
/// successive-halving control flow owns the evaluation schedule.
class Hyperband {
 public:
  Hyperband(SearchSpace space, HyperbandOptions options);

  /// Seeds the BOHB sampler with externally evaluated full-fidelity trials
  /// (the §V.C warm-up transfer). No effect on plain Hyperband.
  void WarmStart(const std::vector<Trial>& trials);

  /// Runs outer-loop brackets (s = s_max .. 0, cycling) until the cost
  /// budget is exhausted. Objective errors abort the run. Thin wrapper over
  /// RunBatched that evaluates each rung member individually.
  Result<HyperbandResult> Run(const MultiFidelityObjective& objective);

  /// The batched driver: every rung — already a natural pool — is handed to
  /// the objective in one call. Identical trajectory to Run() when the
  /// batched objective returns the same per-member losses.
  Result<HyperbandResult> RunBatched(const MultiFidelityBatchObjective& objective);

  /// Rung fidelities, smallest first (exposed for tests).
  std::vector<double> RungFidelities() const;

  int s_max() const { return s_max_; }

  /// Hyperband's analog of Optimizer::AppendObservationState: a canonical,
  /// bit-exact encoding of the per-rung observation ledger (the state that
  /// determines every future proposal and promotion). Used by the durable-fit
  /// checkpoint layer to digest multi-fidelity trajectories.
  void AppendObservationState(std::string* out) const;

 private:
  /// Draws a bracket's initial pool of `n` configurations: uniform
  /// (Hyperband / random_fraction / cold model) or, per model-based slot, a
  /// one-shot TPE proposal fit on the deepest informative fidelity pool
  /// (BOHB). Slots stay independently seeded so the bracket's initial pool
  /// keeps its diversity; the batching win is in the rung evaluation.
  std::vector<ParamVector> ProposeBatch(int n);

  /// Pool lookup for the BOHB model: observations at the largest fidelity
  /// with at least min_model_points entries; nullptr when all are cold.
  const std::vector<Trial>* ModelPool() const;

  SearchSpace space_;
  HyperbandOptions options_;
  Rng rng_;
  int s_max_ = 0;
  /// Observations per rung fidelity, keyed by rung index (0 = smallest).
  std::vector<std::vector<Trial>> rung_observations_;
};

}  // namespace featlib

#pragma once

/// \file random_search.h
/// \brief Uniform random search baseline (Bergstra & Bengio, JMLR'12).

#include "hpo/optimizer.h"

namespace featlib {

/// \brief Optimizer that ignores history and samples uniformly.
class RandomSearch : public Optimizer {
 public:
  RandomSearch(SearchSpace space, uint64_t seed)
      : space_(std::move(space)), rng_(seed) {}

  ParamVector Suggest() override { return space_.Sample(&rng_); }

  // SuggestBatch: the inherited default (n sequential Suggests) already *is*
  // the correct batched proposal here — batching costs random search
  // nothing, and the base default draws the identical sample sequence.

  void Observe(const ParamVector& params, double loss) override {
    history_.push_back(Trial{params, loss});
  }

  /// Observation state serializes through the inherited
  /// AppendObservationState default; random search consults no history, but
  /// its RNG position advances one full-vector sample per Suggest(), which a
  /// deterministic replay re-drives identically, so the canonical base
  /// encoding still pins the trajectory.
  const std::vector<Trial>& history() const override { return history_; }

 private:
  SearchSpace space_;
  Rng rng_;
  std::vector<Trial> history_;
};

}  // namespace featlib

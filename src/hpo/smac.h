#pragma once

/// \file smac.h
/// \brief SMAC-style optimizer (Hutter et al., LION'11): a random-forest
/// surrogate over configurations with a lower-confidence-bound acquisition.
///
/// The paper's §V Remark names SMAC (and BOHB) as the HPO methods to
/// investigate next; this implements that future-work comparison point so
/// the generator can swap Bayesian-optimization engines. The forest reuses
/// featlib's gradient trees; predictive uncertainty is the across-tree
/// variance; candidates mix uniform draws with local perturbations of the
/// incumbent (SMAC's local search).

#include "hpo/optimizer.h"

namespace featlib {

struct SmacOptions {
  /// Trees in the surrogate forest.
  int n_trees = 12;
  /// Candidates scored per Suggest (half uniform, half incumbent
  /// perturbations).
  int n_candidates = 32;
  /// Random configurations before the surrogate takes over.
  int n_startup = 10;
  /// LCB exploration strength: acquisition = mean - kappa * stddev.
  double kappa = 1.3;
  /// Uniform-exploration fraction after startup (interleaved random
  /// configurations, as in SMAC's alternating scheme).
  double exploration_fraction = 0.25;
  /// Std-dev of numeric perturbations, as a fraction of the domain width.
  double perturbation_scale = 0.2;
  uint64_t seed = 42;
};

/// \brief Random-forest-surrogate optimizer. Minimizes loss.
class Smac : public Optimizer {
 public:
  Smac(SearchSpace space, SmacOptions options);

  ParamVector Suggest() override;

  /// Batched proposal: per-slot exploration draws happen in sequential
  /// order, then the surrogate forest is fit *once* and a shared candidate
  /// pool of n_candidates x (exploit slots) configurations (alternating
  /// uniform / incumbent perturbations) is ranked by the LCB acquisition;
  /// the top-n distinct candidates fill the exploit slots. SuggestBatch(1)
  /// consumes the RNG exactly like Suggest().
  std::vector<ParamVector> SuggestBatch(int n) override;

  void Observe(const ParamVector& params, double loss) override;
  /// Observation state serializes through the inherited
  /// AppendObservationState default: the surrogate forest is refit from
  /// history_ on every proposal (seeded per call), so history_ is the full
  /// trajectory-determining state and the canonical base encoding covers it.
  const std::vector<Trial>& history() const override { return history_; }

  const SearchSpace& space() const { return space_; }

 private:
  /// Encodes a configuration for the forest: categorical/numeric dims map
  /// to one feature, optional dims to (is_none, value-or-midpoint).
  std::vector<double> EncodeConfig(const ParamVector& v) const;

  /// Perturbs the incumbent: each dim resampled with probability ~1/dims,
  /// numeric dims jittered by a scaled Gaussian.
  ParamVector Perturb(const ParamVector& base);

  SearchSpace space_;
  SmacOptions options_;
  Rng rng_;
  std::vector<Trial> history_;
};

}  // namespace featlib

#include "hpo/space.h"

#include <algorithm>

#include "common/str_util.h"

namespace featlib {

ParamDomain ParamDomain::Categorical(std::string name, int n_choices) {
  FEAT_CHECK(n_choices > 0, "categorical domain needs choices");
  ParamDomain d;
  d.kind = Kind::kCategorical;
  d.name = std::move(name);
  d.n_choices = n_choices;
  return d;
}

ParamDomain ParamDomain::Numeric(std::string name, double lo, double hi,
                                 bool integer) {
  FEAT_CHECK(lo <= hi, "numeric domain needs lo <= hi");
  ParamDomain d;
  d.kind = Kind::kNumeric;
  d.name = std::move(name);
  d.lo = lo;
  d.hi = hi;
  d.integer = integer;
  return d;
}

ParamDomain ParamDomain::OptionalNumeric(std::string name, double lo, double hi,
                                         bool integer) {
  ParamDomain d = Numeric(std::move(name), lo, hi, integer);
  d.kind = Kind::kOptionalNumeric;
  return d;
}

double ParamDomain::Sample(Rng* rng) const {
  switch (kind) {
    case Kind::kCategorical:
      return static_cast<double>(rng->UniformInt(static_cast<uint64_t>(n_choices)));
    case Kind::kOptionalNumeric:
      if (rng->Bernoulli(0.5)) return NoneValue();
      [[fallthrough]];
    case Kind::kNumeric: {
      double v = rng->UniformReal(lo, hi);
      if (integer) v = std::round(v);
      return Clip(v);
    }
  }
  return 0.0;
}

double ParamDomain::Clip(double v) const {
  if (kind == Kind::kCategorical) {
    if (IsNone(v)) return 0.0;
    double c = std::round(v);
    if (c < 0.0) c = 0.0;
    if (c > static_cast<double>(n_choices - 1)) {
      c = static_cast<double>(n_choices - 1);
    }
    return c;
  }
  if (IsNone(v)) {
    return kind == Kind::kOptionalNumeric ? NoneValue() : 0.5 * (lo + hi);
  }
  double out = std::min(hi, std::max(lo, v));
  if (integer) out = std::round(out);
  return out;
}

ParamVector SearchSpace::Sample(Rng* rng) const {
  ParamVector out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) out[i] = dims_[i].Sample(rng);
  return out;
}

Status SearchSpace::Validate(const ParamVector& v) const {
  if (v.size() != dims_.size()) {
    return Status::InvalidArgument(
        StrFormat("vector has %zu dims, space has %zu", v.size(), dims_.size()));
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    const ParamDomain& d = dims_[i];
    if (IsNone(v[i])) {
      if (d.kind != ParamDomain::Kind::kOptionalNumeric) {
        return Status::InvalidArgument("None in non-optional dim " + d.name);
      }
      continue;
    }
    switch (d.kind) {
      case ParamDomain::Kind::kCategorical:
        if (v[i] < 0.0 || v[i] > static_cast<double>(d.n_choices - 1)) {
          return Status::OutOfRange("categorical out of range in " + d.name);
        }
        break;
      case ParamDomain::Kind::kNumeric:
      case ParamDomain::Kind::kOptionalNumeric:
        if (v[i] < d.lo - 1e-9 || v[i] > d.hi + 1e-9) {
          return Status::OutOfRange("numeric out of range in " + d.name);
        }
        break;
    }
  }
  return Status::OK();
}

}  // namespace featlib

#pragma once

/// \file space.h
/// \brief Hyperparameter search-space definition shared by TPE and random
/// search. Query vectors (§V.A) are points in such a space.

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace featlib {

/// A point in the space. NaN encodes "None" in optional dimensions (the
/// paper's absent-predicate marker).
using ParamVector = std::vector<double>;

/// \brief Domain of one dimension.
struct ParamDomain {
  enum class Kind {
    /// Integer choice in {0, .., n_choices-1}; distances are meaningless.
    kCategorical,
    /// Real (or snapped-integer) value in [lo, hi].
    kNumeric,
    /// kNumeric that may also take None (NaN).
    kOptionalNumeric,
  };

  Kind kind = Kind::kNumeric;
  std::string name;
  int n_choices = 0;     // kCategorical
  double lo = 0.0;       // kNumeric / kOptionalNumeric
  double hi = 1.0;
  bool integer = false;  // snap numeric samples to integers

  static ParamDomain Categorical(std::string name, int n_choices);
  static ParamDomain Numeric(std::string name, double lo, double hi,
                             bool integer = false);
  static ParamDomain OptionalNumeric(std::string name, double lo, double hi,
                                     bool integer = false);

  /// Draws one value uniformly (optional dims take None w.p. 0.5).
  double Sample(Rng* rng) const;

  /// Clamps/snaps `v` into the domain. None stays None for optional dims;
  /// for required dims NaN becomes the midpoint.
  double Clip(double v) const;
};

/// \brief An ordered list of dimensions.
class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<ParamDomain> dims) : dims_(std::move(dims)) {}

  size_t NumDims() const { return dims_.size(); }
  const ParamDomain& dim(size_t i) const { return dims_[i]; }
  const std::vector<ParamDomain>& dims() const { return dims_; }

  void Add(ParamDomain domain) { dims_.push_back(std::move(domain)); }

  /// Uniform sample of a full vector.
  ParamVector Sample(Rng* rng) const;

  /// Validates dimensionality and per-dim membership.
  Status Validate(const ParamVector& v) const;

 private:
  std::vector<ParamDomain> dims_;
};

/// True when the slot holds None.
inline bool IsNone(double v) { return std::isnan(v); }

/// The None marker.
inline double NoneValue() { return std::nan(""); }

}  // namespace featlib

#pragma once

/// \file tpe.h
/// \brief Tree-structured Parzen Estimator (Bergstra et al., NeurIPS'11),
/// the Bayesian-optimization engine of FeatAug's SQL Query Generation
/// component (§V.B).
///
/// Observations are split at the gamma quantile of losses into "good" and
/// "bad" sets; per dimension, Parzen estimators l(x) (good) and g(x) (bad)
/// are built, candidates are sampled from l and ranked by the expected-
/// improvement surrogate log l(x) - log g(x). Categorical dimensions use
/// Dirichlet-smoothed counts; optional dimensions model P(None) separately
/// (the paper's absent-predicate slots).

#include "hpo/optimizer.h"

namespace featlib {

struct TpeOptions {
  /// Quantile of observations labeled "good" (paper: 10-15%).
  double gamma = 0.15;
  /// Candidates sampled from l(x) per Suggest call.
  int n_candidates = 32;
  /// Random exploration before the surrogate kicks in.
  int n_startup = 10;
  /// Weight of the uniform/wide prior mixed into each estimator.
  double prior_weight = 1.0;
  /// Fraction of post-startup suggestions drawn uniformly at random — the
  /// explicit exploration half of the paper's exploration-and-exploitation
  /// strategy. Prevents the surrogate from locking onto an early local
  /// optimum when the good set becomes homogeneous.
  double exploration_fraction = 0.15;
  uint64_t seed = 42;
};

/// \brief TPE optimizer over a SearchSpace. Minimizes loss.
class Tpe : public Optimizer {
 public:
  Tpe(SearchSpace space, TpeOptions options);

  ParamVector Suggest() override;

  /// Batched proposal: per-slot exploration draws happen in sequential
  /// order, then the Parzen estimators are built *once* and a shared pool of
  /// n_candidates x (exploit slots) samples from l(x) is ranked by the EI
  /// surrogate; the top-n distinct candidates fill the exploit slots.
  /// SuggestBatch(1) consumes the RNG exactly like Suggest().
  std::vector<ParamVector> SuggestBatch(int n) override;

  void Observe(const ParamVector& params, double loss) override;
  /// Observation state serializes through the inherited
  /// AppendObservationState default: history_ *is* the full
  /// trajectory-determining state (the Parzen estimators are rebuilt from it
  /// on every proposal), so the canonical base encoding covers TPE exactly.
  const std::vector<Trial>& history() const override { return history_; }

  const SearchSpace& space() const { return space_; }

 private:
  SearchSpace space_;
  TpeOptions options_;
  Rng rng_;
  std::vector<Trial> history_;
};

}  // namespace featlib

#pragma once

/// \file optimizer.h
/// \brief Common suggest/observe interface for sequential optimizers.
/// FeatAug plugs TPE in here (§V.B); the Random baseline plugs RandomSearch.

#include <vector>

#include "hpo/space.h"

namespace featlib {

/// Sentinel recorded in place of non-finite losses (NaN metrics, infinite
/// objectives). Large enough to rank below every real observation, small
/// enough that surrogate arithmetic (sums of squares in the SMAC forest)
/// stays finite.
inline constexpr double kWorstLoss = 1e12;

/// One evaluated configuration. Losses follow the minimize convention.
struct Trial {
  ParamVector params;
  double loss = 0.0;
};

/// \brief Sequential model-based optimizer interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Proposes the next configuration to evaluate.
  virtual ParamVector Suggest() = 0;

  /// Records an evaluated configuration.
  virtual void Observe(const ParamVector& params, double loss) = 0;

  /// Seeds the optimizer's history with externally evaluated trials
  /// (the warm-up transfer of §V.C).
  virtual void WarmStart(const std::vector<Trial>& trials) {
    for (const Trial& t : trials) Observe(t.params, t.loss);
  }

  virtual const std::vector<Trial>& history() const = 0;

  /// Best (lowest-loss) trial so far, or nullptr before any observation.
  const Trial* best() const {
    const Trial* out = nullptr;
    for (const Trial& t : history()) {
      if (out == nullptr || t.loss < out->loss) out = &t;
    }
    return out;
  }
};

}  // namespace featlib

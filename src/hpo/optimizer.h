#pragma once

/// \file optimizer.h
/// \brief Common suggest/observe interface for sequential optimizers.
/// FeatAug plugs TPE in here (§V.B); the Random baseline plugs RandomSearch.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "hpo/space.h"

namespace featlib {

/// Appends the exact bit pattern of `v` as 16 hex digits. The encoding is
/// lossless for every double, including the NaN "None" marker — byte-equal
/// encodings mean bit-equal trajectories, which is what checkpoint
/// trajectory digests compare.
inline void AppendDoubleBits(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf, 16);
}

/// Sentinel recorded in place of non-finite losses (NaN metrics, infinite
/// objectives). Large enough to rank below every real observation, small
/// enough that surrogate arithmetic (sums of squares in the SMAC forest)
/// stays finite.
inline constexpr double kWorstLoss = 1e12;

/// One evaluated configuration. Losses follow the minimize convention.
struct Trial {
  ParamVector params;
  double loss = 0.0;
};

/// Exact equality of two configurations (None == None; everything else
/// bitwise-comparable doubles). Batched proposers use this to keep a pool's
/// members distinct.
inline bool SameParamVector(const ParamVector& a, const ParamVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t d = 0; d < a.size(); ++d) {
    if (IsNone(a[d]) != IsNone(b[d])) return false;
    if (!IsNone(a[d]) && a[d] != b[d]) return false;
  }
  return true;
}

/// Scatters the best `exploit_slots.size()` *distinct* members of a ranked
/// candidate pool (best-first; ties already broken toward the
/// first-sampled, so slot 0 of a 1-slot batch is exactly the sequential
/// argmax) into their slots of `*out`. Duplicates rank next only when the
/// pool has fewer distinct members than slots. Shared by the model-based
/// SuggestBatch overrides (TPE, SMAC) so the two backends' batch-selection
/// semantics stay in lockstep.
inline void ScatterTopDistinct(std::vector<ParamVector> ranked_pool,
                               const std::vector<size_t>& exploit_slots,
                               std::vector<ParamVector>* out) {
  std::vector<ParamVector> picked;
  picked.reserve(exploit_slots.size());
  for (const ParamVector& v : ranked_pool) {
    if (picked.size() == exploit_slots.size()) break;
    bool duplicate = false;
    for (const ParamVector& taken : picked) {
      if (SameParamVector(taken, v)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) picked.push_back(v);
  }
  for (size_t i = 0; picked.size() < exploit_slots.size(); ++i) {
    picked.push_back(ranked_pool[i % ranked_pool.size()]);
  }
  for (size_t k = 0; k < exploit_slots.size(); ++k) {
    (*out)[exploit_slots[k]] = std::move(picked[k]);
  }
}

/// \brief Suggest/observe optimizer interface.
///
/// The batched entry point `SuggestBatch(n)` proposes a *pool* of n
/// configurations from the current posterior, letting callers evaluate the
/// whole pool in one pass (the search pipeline funnels a pool through one
/// `FeatureEvaluator::Features` / `QueryPlanner::EvaluateMany` call).
/// Contract: SuggestBatch(1) is exactly one Suggest() — same proposal, same
/// RNG consumption — so batch=1 loops reproduce sequential trajectories
/// seed-for-seed.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Proposes the next configuration to evaluate.
  virtual ParamVector Suggest() = 0;

  /// Proposes a pool of `n` configurations without intermediate
  /// observations. Default: n sequential Suggest() calls (history does not
  /// change between them, so the pool is drawn from one posterior either
  /// way); model-based optimizers override this to amortize surrogate
  /// construction and rank one shared candidate set.
  virtual std::vector<ParamVector> SuggestBatch(int n) {
    FEAT_CHECK(n > 0, "SuggestBatch needs a positive pool size");
    std::vector<ParamVector> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(Suggest());
    return out;
  }

  /// Records an evaluated configuration.
  virtual void Observe(const ParamVector& params, double loss) = 0;

  /// Seeds the optimizer's history with externally evaluated trials
  /// (the warm-up transfer of §V.C).
  virtual void WarmStart(const std::vector<Trial>& trials) {
    for (const Trial& t : trials) Observe(t.params, t.loss);
  }

  virtual const std::vector<Trial>& history() const = 0;

  /// Appends a canonical, bit-exact encoding of every observation (the
  /// optimizer's trajectory-determining state) to `*out`. Two optimizers of
  /// the same backend and seed that produce byte-equal encodings are in the
  /// same state and will emit the same future suggestions — the durable-fit
  /// checkpoint layer digests this to detect replay divergence. The default
  /// covers every history()-backed backend (TPE, SMAC, RandomSearch);
  /// drivers with richer state (Hyperband's rung ledger) override it.
  virtual void AppendObservationState(std::string* out) const {
    for (const Trial& t : history()) {
      for (double v : t.params) {
        AppendDoubleBits(v, out);
        out->push_back(' ');
      }
      out->push_back(':');
      AppendDoubleBits(t.loss, out);
      out->push_back('\n');
    }
  }

  /// Best (lowest-loss) trial so far, or nullptr before any observation.
  const Trial* best() const {
    const Trial* out = nullptr;
    for (const Trial& t : history()) {
      if (out == nullptr || t.loss < out->loss) out = &t;
    }
    return out;
  }
};

}  // namespace featlib

/// \file template_discovery.cpp
/// \brief A close look at the Query Template Identification component
/// (§VI): runs beam search over the WHERE-attribute lattice three ways —
/// no optimizations, low-cost proxy only (Opt. 1), proxy + performance
/// predictor (Opt. 1+2) — and reports the recommended templates, node
/// counts and wall-clock of each configuration.
///
///   ./template_discovery

#include <cstdio>

#include "common/timer.h"
#include "core/template_id.h"
#include "data/synthetic.h"

using namespace featlib;

namespace {

void RunVariant(FeatureEvaluator* evaluator, const DatasetBundle& bundle,
                const char* label, bool use_proxy, bool use_predictor) {
  TemplateIdOptions options;
  options.use_low_cost_proxy = use_proxy;
  options.use_predictor = use_predictor;
  options.beam_width = 2;
  options.max_depth = 3;
  options.n_templates = 5;
  options.node_iterations = use_proxy ? 25 : 8;  // model evals are pricey
  options.seed = 3;

  QueryTemplate base;
  base.agg_functions = bundle.agg_functions;
  base.agg_attrs = bundle.agg_attrs;
  base.fk_attrs = bundle.fk_attrs;

  TemplateIdentifier identifier(evaluator, options);
  WallTimer timer;
  auto result = identifier.Run(base, bundle.where_candidates);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    return;
  }
  std::printf("\n%s — %.2fs, %zu nodes evaluated, %zu pruned by predictor\n",
              label, timer.Seconds(), result.value().nodes_evaluated,
              result.value().nodes_pruned_by_predictor);
  for (const auto& scored : result.value().templates) {
    std::printf("  score %.4f  P = {%s}\n", scored.score,
                scored.tmpl.WhereKey().c_str());
  }
}

}  // namespace

int main() {
  SyntheticOptions data_options;
  data_options.n_train = 1500;
  data_options.avg_logs_per_entity = 12;
  data_options.seed = 5;
  const DatasetBundle bundle = MakeStudent(data_options);
  std::printf("Student scenario: %zu sessions, %zu events\n",
              bundle.training.num_rows(), bundle.relevant.num_rows());
  std::printf("Candidate WHERE attributes:");
  for (const auto& attr : bundle.where_candidates) std::printf(" %s", attr.c_str());
  std::printf("\nPlanted template: {%s}\n", bundle.golden_template.WhereKey().c_str());

  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(
      bundle.training, bundle.label_col, bundle.base_features, bundle.relevant,
      bundle.task, eval_options);
  if (!evaluator.ok()) {
    std::fprintf(stderr, "evaluator: %s\n", evaluator.status().ToString().c_str());
    return 1;
  }
  FeatureEvaluator eval = std::move(evaluator).ValueOrDie();

  RunVariant(&eval, bundle, "Beam search, no optimizations (model-in-loop)",
             /*use_proxy=*/false, /*use_predictor=*/false);
  RunVariant(&eval, bundle, "Optimization 1 (MI proxy)", true, false);
  RunVariant(&eval, bundle, "Optimizations 1+2 (proxy + predictor)", true, true);
  return 0;
}

/// \file next_purchase.cpp
/// \brief The paper's motivating scenario (§I): repeat-purchase prediction
/// from customer behaviour logs, at a realistic scale, with the full
/// pipeline — Query Template Identification over candidate WHERE attributes
/// followed by per-template query generation — and a head-to-head against
/// the Featuretools baseline under the same feature budget.
///
///   ./next_purchase [rows]

#include <cstdio>
#include <cstdlib>

#include "baselines/featuretools.h"
#include "baselines/selectors.h"
#include "common/timer.h"
#include "data/synthetic.h"

using namespace featlib;

int main(int argc, char** argv) {
  SyntheticOptions data_options;
  data_options.n_train = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  data_options.avg_logs_per_entity = 12;
  data_options.seed = 7;
  const DatasetBundle bundle = MakeTmall(data_options);
  std::printf("Tmall-style scenario: %zu customers, %zu behaviour logs\n",
              bundle.training.num_rows(), bundle.relevant.num_rows());
  std::printf("Planted signal: %s\n\n",
              bundle.golden_query.ToSql("user_logs", bundle.relevant).c_str());

  FeatAugOptions options;
  options.n_templates = 4;
  options.queries_per_template = 5;
  options.evaluator.model = ModelKind::kXgb;
  options.seed = 42;

  WallTimer timer;
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("FeatAug fit in %.1fs (QTI %.1fs, warm-up %.1fs, generate %.1fs)\n",
              timer.Seconds(), plan.value().qti_seconds,
              plan.value().warmup_seconds, plan.value().generate_seconds);
  std::printf("%zu model evaluations, %zu proxy evaluations\n\n",
              plan.value().model_evals, plan.value().proxy_evals);

  std::printf("Top discovered queries:\n");
  const size_t show = std::min<size_t>(5, plan.value().queries.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  [valid AUC %.4f] %s\n", plan.value().valid_metrics[i],
                plan.value().queries[i].CacheKey().c_str());
  }

  // Featuretools under the same feature budget.
  auto* evaluator = feataug.evaluator();
  const auto ft_all = GenerateFeaturetoolsQueries(
      bundle.relevant, bundle.agg_functions, bundle.agg_attrs, bundle.fk_attrs);
  auto ft_selected = SelectQueries(evaluator, ft_all, SelectorKind::kMi,
                                   plan.value().queries.size());

  const double baseline = evaluator->BaselineModelScore().value();
  const double feataug_auc = evaluator->TestScore(plan.value().queries).value();
  const double ft_auc = evaluator->TestScore(ft_selected.value()).value();
  std::printf("\nHeld-out test AUC (XGB):\n");
  std::printf("  no augmentation        %.4f\n", baseline);
  std::printf("  Featuretools+MI (%2zu)   %.4f\n", ft_selected.value().size(),
              ft_auc);
  std::printf("  FeatAug        (%2zu)   %.4f\n", plan.value().queries.size(),
              feataug_auc);
  return 0;
}

/// \file feataug_cli.cpp
/// \brief Command-line FeatAug: augment a CSV training table from a CSV
/// relevant table and write the augmented CSV plus the discovered SQL.
///
///   feataug_cli --train=D.csv --relevant=R.csv --label=label
///               --fk=user_id[,merchant_id] --out=augmented.csv
///               [--task=binary|multiclass|regression] [--model=LR|XGB|RF|DeepFM]
///               [--features=20] [--templates=4] [--seed=42]
///               [--agg-attrs=a,b] [--where-attrs=p,q] [--base-features=x,y]
///
/// Column roles default sensibly (InferTemplateIngredients): aggregation
/// attributes = R's numeric/bool/datetime columns (minus FKs), WHERE
/// candidates = those plus low-cardinality string columns (minus FKs), base
/// features = D's numeric columns (minus label and FKs).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/str_util.h"
#include "core/feataug.h"
#include "core/multi_table.h"
#include "table/csv.h"

using namespace featlib;

namespace {

struct CliArgs {
  std::string train_path;
  std::string relevant_path;
  std::string out_path = "augmented.csv";
  std::string label;
  std::vector<std::string> fk;
  std::string task = "binary";
  std::string model = "XGB";
  int features = 20;
  int templates = 4;
  uint64_t seed = 42;
  std::vector<std::string> agg_attrs;
  std::vector<std::string> where_attrs;
  std::vector<std::string> base_features;
};

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--train=")) args->train_path = v;
    else if (const char* v = value_of("--relevant=")) args->relevant_path = v;
    else if (const char* v = value_of("--out=")) args->out_path = v;
    else if (const char* v = value_of("--label=")) args->label = v;
    else if (const char* v = value_of("--fk=")) args->fk = StrSplit(v, ',');
    else if (const char* v = value_of("--task=")) args->task = v;
    else if (const char* v = value_of("--model=")) args->model = v;
    else if (const char* v = value_of("--features=")) args->features = std::atoi(v);
    else if (const char* v = value_of("--templates=")) args->templates = std::atoi(v);
    else if (const char* v = value_of("--seed=")) args->seed = std::atoll(v);
    else if (const char* v = value_of("--agg-attrs=")) args->agg_attrs = StrSplit(v, ',');
    else if (const char* v = value_of("--where-attrs=")) args->where_attrs = StrSplit(v, ',');
    else if (const char* v = value_of("--base-features=")) args->base_features = StrSplit(v, ',');
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->train_path.empty() || args->relevant_path.empty() ||
      args->label.empty() || args->fk.empty()) {
    std::fprintf(stderr,
                 "required: --train=D.csv --relevant=R.csv --label=col "
                 "--fk=key[,key2]\n");
    return false;
  }
  return true;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

int RunCli(const CliArgs& args) {
  auto train = ReadCsv(args.train_path);
  if (!train.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.train_path.c_str(),
                 train.status().ToString().c_str());
    return 1;
  }
  auto relevant = ReadCsv(args.relevant_path);
  if (!relevant.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.relevant_path.c_str(),
                 relevant.status().ToString().c_str());
    return 1;
  }

  FeatAugProblem problem;
  problem.training = std::move(train).ValueOrDie();
  problem.relevant = std::move(relevant).ValueOrDie();
  problem.label_col = args.label;
  problem.fk_attrs = args.fk;
  if (args.task == "binary") {
    problem.task = TaskKind::kBinaryClassification;
  } else if (args.task == "multiclass") {
    problem.task = TaskKind::kMultiClassification;
  } else if (args.task == "regression") {
    problem.task = TaskKind::kRegression;
  } else {
    std::fprintf(stderr, "unknown task: %s\n", args.task.c_str());
    return 1;
  }
  problem.agg_functions = AllAggFunctions();

  // Infer column roles that were not given explicitly (shared heuristic
  // with MultiTableFeatAug: numeric/bool/datetime aggregate, near-unique
  // string columns are dropped from the WHERE candidates).
  problem.agg_attrs = args.agg_attrs;
  problem.candidate_where_attrs = args.where_attrs;
  if (args.agg_attrs.empty() || args.where_attrs.empty()) {
    TemplateIngredients inferred =
        InferTemplateIngredients(problem.relevant, args.fk);
    if (args.agg_attrs.empty()) problem.agg_attrs = std::move(inferred.agg_attrs);
    if (args.where_attrs.empty()) {
      problem.candidate_where_attrs = std::move(inferred.where_candidates);
    }
  }
  problem.base_feature_cols = args.base_features;
  if (args.base_features.empty()) {
    for (size_t c = 0; c < problem.training.num_columns(); ++c) {
      const std::string& name = problem.training.NameAt(c);
      if (name == args.label || Contains(args.fk, name)) continue;
      problem.base_feature_cols.push_back(name);
    }
  }

  FeatAugOptions options;
  options.n_templates = args.templates;
  options.queries_per_template =
      std::max(1, args.features / std::max(1, args.templates));
  auto model = [&]() -> Result<ModelKind> {
    const std::string upper = [&] {
      std::string s = args.model;
      for (char& ch : s) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      return s;
    }();
    if (upper == "LR") return ModelKind::kLogisticRegression;
    if (upper == "XGB") return ModelKind::kXgb;
    if (upper == "RF") return ModelKind::kRandomForest;
    if (upper == "DEEPFM") return ModelKind::kDeepFm;
    return Status::InvalidArgument("unknown model " + args.model);
  }();
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  options.evaluator.model = model.value();
  options.evaluator.metric = DefaultMetricFor(problem.task);
  options.seed = args.seed;

  std::printf("FeatAug: D=%zu rows, R=%zu rows, %zu agg attrs, %zu WHERE candidates\n",
              problem.training.num_rows(), problem.relevant.num_rows(),
              problem.agg_attrs.size(), problem.candidate_where_attrs.size());

  const Table relevant_copy = problem.relevant;
  const Table training_copy = problem.training;
  FeatAug feataug(std::move(problem), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDiscovered %zu queries:\n", plan.value().queries.size());
  for (size_t i = 0; i < plan.value().queries.size(); ++i) {
    std::printf("-- %s  [validation %s %.4f]\n%s\n\n",
                plan.value().feature_names[i].c_str(),
                MetricKindToString(options.evaluator.metric),
                plan.value().valid_metrics[i],
                plan.value().queries[i].ToSql("R", relevant_copy).c_str());
  }

  auto augmented = feataug.Apply(plan.value(), training_copy);
  if (!augmented.ok()) {
    std::fprintf(stderr, "Apply failed: %s\n", augmented.status().ToString().c_str());
    return 1;
  }
  Status st = WriteCsv(augmented.value(), args.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "writing %s: %s\n", args.out_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("augmented table (%zu columns) -> %s\n",
              augmented.value().num_columns(), args.out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!Parse(argc, argv, &args)) return 2;
  return RunCli(args);
}

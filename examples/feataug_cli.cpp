/// \file feataug_cli.cpp
/// \brief Command-line FeatAug: fit offline, ship the SQL artifact, serve
/// online — the two phases are two subcommands.
///
/// Fit (the default subcommand): search for an augmentation plan and write
/// the augmented CSV plus, optionally, the serialized plan:
///
///   feataug_cli [fit] --train=D.csv --relevant=R.csv --label=label
///               --fk=user_id[,merchant_id] --out=augmented.csv
///               [--plan-out=plan.sql]
///               [--task=binary|multiclass|regression] [--model=LR|XGB|RF|DeepFM]
///               [--features=20] [--templates=4] [--seed=42]
///               [--agg-attrs=a,b] [--where-attrs=p,q] [--base-features=x,y]
///               [--checkpoint-dir=DIR] [--resume] [--morsel-rows=N]
///
/// --checkpoint-dir makes the fit durable: the search snapshots its state
/// to DIR/fit.ckpt (atomic, checksummed) at round boundaries. A fit killed
/// at any point is re-run with the same flags plus --resume and produces a
/// plan byte-identical to an uninterrupted run, paying only the work past
/// the last snapshot.
///
/// Transform (the serving phase): load a serialized plan into a warm
/// FittedAugmenter and stream one or more CSV batches through the serving
/// batcher — no search, no model, no re-planning between batches:
///
///   feataug_cli transform --plan=plan.sql --relevant=R.csv
///               --in=batch.csv[,batch2.csv] --out=augmented.csv
///               [--deadline-ms=N] [--memory-budget-mb=N] [--morsel-rows=N]
///
/// Batches go through the same serve::Batcher the daemon uses: one warm
/// handle, concurrent submissions coalesced into TransformManyIsolated
/// fan-outs, per-batch failure isolation (a failing batch reports its own
/// error; siblings still write their outputs).
///
/// With --socket the transform forwards to a running `feataug_serve`
/// daemon instead of loading the plan locally — no --plan/--relevant
/// needed, the daemon owns both:
///
///   feataug_cli transform --socket=/tmp/feataug_serve.sock
///               --plan-name=NAME --in=batch.csv[,batch2.csv]
///               [--out=augmented.csv] [--deadline-ms=N]
///
/// --deadline-ms / --memory-budget-mb impose cooperative execution limits
/// (ExecContext) on the transform: past the deadline (or over the budget)
/// the run stops within one chunk of work and exits with a clean
/// DeadlineExceeded / ResourceExhausted error instead of running away.
/// In socket mode the deadline travels with each request and is enforced
/// by the daemon.
///
/// --morsel-rows=N streams artifact builds in N-row morsels (query/morsel.h)
/// instead of whole-table passes: bounded peak memory, bit-identical
/// features. 0 forces the single-pass path; unset defers to the
/// FEATLIB_MORSEL_ROWS env var, then the config default (single-pass).
///
/// Column roles default sensibly (InferTemplateIngredients): aggregation
/// attributes = R's numeric/bool/datetime columns (minus FKs), WHERE
/// candidates = those plus low-cardinality string columns (minus FKs), base
/// features = D's numeric columns (minus label and FKs).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "common/config.h"
#include "common/exec_context.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/feataug.h"
#include "core/multi_table.h"
#include "core/plan_io.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "table/csv.h"

using namespace featlib;

namespace {

struct CliArgs {
  std::string train_path;
  std::string relevant_path;
  std::string out_path = "augmented.csv";
  std::string plan_out_path;
  std::string label;
  std::vector<std::string> fk;
  std::string task = "binary";
  std::string model = "XGB";
  int features = 20;
  int templates = 4;
  uint64_t seed = 42;
  std::vector<std::string> agg_attrs;
  std::vector<std::string> where_attrs;
  std::vector<std::string> base_features;
  std::string checkpoint_dir;
  bool resume = false;
  long long morsel_rows = -1;  // <0 = keep config / FEATLIB_MORSEL_ROWS
};

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--train=")) args->train_path = v;
    else if (const char* v = value_of("--relevant=")) args->relevant_path = v;
    else if (const char* v = value_of("--out=")) args->out_path = v;
    else if (const char* v = value_of("--plan-out=")) args->plan_out_path = v;
    else if (const char* v = value_of("--label=")) args->label = v;
    else if (const char* v = value_of("--fk=")) args->fk = StrSplit(v, ',');
    else if (const char* v = value_of("--task=")) args->task = v;
    else if (const char* v = value_of("--model=")) args->model = v;
    else if (const char* v = value_of("--features=")) args->features = std::atoi(v);
    else if (const char* v = value_of("--templates=")) args->templates = std::atoi(v);
    else if (const char* v = value_of("--seed=")) args->seed = std::atoll(v);
    else if (const char* v = value_of("--agg-attrs=")) args->agg_attrs = StrSplit(v, ',');
    else if (const char* v = value_of("--where-attrs=")) args->where_attrs = StrSplit(v, ',');
    else if (const char* v = value_of("--base-features=")) args->base_features = StrSplit(v, ',');
    else if (const char* v = value_of("--checkpoint-dir=")) args->checkpoint_dir = v;
    else if (const char* v = value_of("--morsel-rows=")) args->morsel_rows = std::atoll(v);
    else if (arg == "--resume") args->resume = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->train_path.empty() || args->relevant_path.empty() ||
      args->label.empty() || args->fk.empty()) {
    std::fprintf(stderr,
                 "required: --train=D.csv --relevant=R.csv --label=col "
                 "--fk=key[,key2]\n");
    return false;
  }
  return true;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

int RunCli(const CliArgs& args) {
  auto train = ReadCsv(args.train_path);
  if (!train.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.train_path.c_str(),
                 train.status().ToString().c_str());
    return 1;
  }
  auto relevant = ReadCsv(args.relevant_path);
  if (!relevant.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.relevant_path.c_str(),
                 relevant.status().ToString().c_str());
    return 1;
  }

  FeatAugProblem problem;
  problem.training = std::move(train).ValueOrDie();
  problem.relevant = std::move(relevant).ValueOrDie();
  problem.label_col = args.label;
  problem.fk_attrs = args.fk;
  if (args.task == "binary") {
    problem.task = TaskKind::kBinaryClassification;
  } else if (args.task == "multiclass") {
    problem.task = TaskKind::kMultiClassification;
  } else if (args.task == "regression") {
    problem.task = TaskKind::kRegression;
  } else {
    std::fprintf(stderr, "unknown task: %s\n", args.task.c_str());
    return 1;
  }
  problem.agg_functions = AllAggFunctions();

  // Infer column roles that were not given explicitly (shared heuristic
  // with MultiTableFeatAug: numeric/bool/datetime aggregate, near-unique
  // string columns are dropped from the WHERE candidates).
  problem.agg_attrs = args.agg_attrs;
  problem.candidate_where_attrs = args.where_attrs;
  if (args.agg_attrs.empty() || args.where_attrs.empty()) {
    TemplateIngredients inferred =
        InferTemplateIngredients(problem.relevant, args.fk);
    if (args.agg_attrs.empty()) problem.agg_attrs = std::move(inferred.agg_attrs);
    if (args.where_attrs.empty()) {
      problem.candidate_where_attrs = std::move(inferred.where_candidates);
    }
  }
  problem.base_feature_cols = args.base_features;
  if (args.base_features.empty()) {
    for (size_t c = 0; c < problem.training.num_columns(); ++c) {
      const std::string& name = problem.training.NameAt(c);
      if (name == args.label || Contains(args.fk, name)) continue;
      problem.base_feature_cols.push_back(name);
    }
  }

  FeatAugOptions options;
  options.n_templates = args.templates;
  options.queries_per_template =
      std::max(1, args.features / std::max(1, args.templates));
  auto model = [&]() -> Result<ModelKind> {
    const std::string upper = [&] {
      std::string s = args.model;
      for (char& ch : s) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      return s;
    }();
    if (upper == "LR") return ModelKind::kLogisticRegression;
    if (upper == "XGB") return ModelKind::kXgb;
    if (upper == "RF") return ModelKind::kRandomForest;
    if (upper == "DEEPFM") return ModelKind::kDeepFm;
    return Status::InvalidArgument("unknown model " + args.model);
  }();
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  options.evaluator.model = model.value();
  options.evaluator.metric = DefaultMetricFor(problem.task);
  options.seed = args.seed;
  if (args.resume && args.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 1;
  }
  options.checkpoint.dir = args.checkpoint_dir;
  options.checkpoint.resume = args.resume;
  // --morsel-rows beats the FEATLIB_MORSEL_ROWS env / config default; 0
  // explicitly forces the single-pass in-RAM path.
  if (args.morsel_rows >= 0) {
    FeatAugConfig::Global().morsel_rows =
        static_cast<size_t>(args.morsel_rows);
  }

  std::printf("FeatAug: D=%zu rows, R=%zu rows, %zu agg attrs, %zu WHERE candidates\n",
              problem.training.num_rows(), problem.relevant.num_rows(),
              problem.agg_attrs.size(), problem.candidate_where_attrs.size());

  const Table relevant_copy = problem.relevant;
  const Table training_copy = problem.training;
  FeatAug feataug(std::move(problem), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDiscovered %zu queries:\n", plan.value().queries.size());
  for (size_t i = 0; i < plan.value().queries.size(); ++i) {
    std::printf("-- %s  [validation %s %.4f]\n%s\n\n",
                plan.value().feature_names[i].c_str(),
                MetricKindToString(options.evaluator.metric),
                plan.value().valid_metrics[i],
                plan.value().queries[i].ToSql("R", relevant_copy).c_str());
  }

  // Fit-health summary: how much of the search was absorbed by caches and
  // how much friction (skipped candidates, build retries) it ran into.
  {
    const AugmentationPlan& p = plan.value();
    const size_t compile_total = p.compile_cache_hits + p.compile_cache_misses;
    std::printf(
        "fit diagnostics: %zu model evals, %zu proxy evals, "
        "%zu model / %zu proxy cache hits\n",
        p.model_evals, p.proxy_evals, p.model_cache_hits, p.proxy_cache_hits);
    std::printf(
        "                 %zu failed candidates, %zu build retries, "
        "plan-compile hit rate %.1f%% (%zu/%zu)\n",
        p.failed_candidates.size(), p.build_retries,
        compile_total == 0 ? 0.0
                           : 100.0 * static_cast<double>(p.compile_cache_hits) /
                                 static_cast<double>(compile_total),
        p.compile_cache_hits, compile_total);
    if (!p.failed_candidates.empty()) {
      std::printf("                 first failure: %s\n",
                  p.failed_candidates.front().status.ToString().c_str());
    }
    if (!args.checkpoint_dir.empty()) {
      std::printf("                 %zu checkpoint snapshot(s)%s\n",
                  p.checkpoints_written,
                  p.resumed_from_checkpoint ? ", resumed from checkpoint" : "");
    }
  }

  // Serving handle: compiled once here, then applied to the training CSV.
  // The same plan can be shipped and served later via `transform`.
  auto fitted = feataug.MakeFitted(plan.value());
  if (!fitted.ok()) {
    std::fprintf(stderr, "MakeFitted failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  auto augmented = fitted.value()->Transform(training_copy);
  if (!augmented.ok()) {
    std::fprintf(stderr, "Transform failed: %s\n",
                 augmented.status().ToString().c_str());
    return 1;
  }
  Status st = WriteCsv(augmented.value(), args.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "writing %s: %s\n", args.out_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("augmented table (%zu columns) -> %s\n",
              augmented.value().num_columns(), args.out_path.c_str());
  if (!args.plan_out_path.empty()) {
    st = WriteAugmentationPlan(plan.value(), "R", relevant_copy,
                               args.plan_out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing %s: %s\n", args.plan_out_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("serialized plan (%zu queries) -> %s\n",
                plan.value().queries.size(), args.plan_out_path.c_str());
  }
  return 0;
}

// ---- The serving phase: `feataug_cli transform` ---------------------------

struct TransformArgs {
  std::string plan_path;
  std::string relevant_path;
  std::vector<std::string> in_paths;
  std::string out_path = "augmented.csv";
  long long deadline_ms = 0;       // 0 = no deadline
  long long memory_budget_mb = 0;  // 0 = unlimited
  std::string socket_path;         // non-empty: forward to a daemon
  std::string plan_name;           // daemon-side plan name (socket mode)
  long long morsel_rows = -1;      // <0 = keep config / FEATLIB_MORSEL_ROWS
};

bool ParseTransform(int argc, char** argv, TransformArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--plan=")) args->plan_path = v;
    else if (const char* v = value_of("--relevant=")) args->relevant_path = v;
    else if (const char* v = value_of("--in=")) args->in_paths = StrSplit(v, ',');
    else if (const char* v = value_of("--out=")) args->out_path = v;
    else if (const char* v = value_of("--deadline-ms=")) args->deadline_ms = std::atoll(v);
    else if (const char* v = value_of("--memory-budget-mb=")) args->memory_budget_mb = std::atoll(v);
    else if (const char* v = value_of("--socket=")) args->socket_path = v;
    else if (const char* v = value_of("--plan-name=")) args->plan_name = v;
    else if (const char* v = value_of("--morsel-rows=")) args->morsel_rows = std::atoll(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (!args->socket_path.empty()) {
    if (args->plan_name.empty() || args->in_paths.empty()) {
      std::fprintf(stderr,
                   "required: transform --socket=daemon.sock --plan-name=NAME "
                   "--in=batch.csv[,batch2.csv]\n");
      return false;
    }
    return true;
  }
  if (args->plan_path.empty() || args->relevant_path.empty() ||
      args->in_paths.empty()) {
    std::fprintf(stderr,
                 "required: transform --plan=plan.sql --relevant=R.csv "
                 "--in=batch.csv[,batch2.csv]\n");
    return false;
  }
  return true;
}

// Derives the per-batch output path: "out.csv" -> "out.1.csv", ... when
// several inputs are transformed (the first keeps the plain name).
std::string BatchOutPath(const std::string& out, size_t index) {
  if (index == 0) return out;
  const size_t dot = out.find_last_of('.');
  const size_t slash = out.find_last_of('/');
  const std::string suffix = "." + std::to_string(index);
  // A dot inside a directory component is not an extension separator.
  const bool has_extension =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  if (!has_extension) return out + suffix;
  return out.substr(0, dot) + suffix + out.substr(dot);
}

// Writes each successful batch output to its derived path; failed batches
// report their own error without blocking siblings (partial-failure
// isolation, matching the daemon's per-slot semantics).
int WriteBatchOutputs(const std::vector<Status>& statuses,
                      std::vector<Table>& outputs,
                      const TransformArgs& args) {
  int failures = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!statuses[i].ok()) {
      std::fprintf(stderr, "batch %zu (%s): %s\n", i, args.in_paths[i].c_str(),
                   statuses[i].ToString().c_str());
      ++failures;
      continue;
    }
    const std::string out_path = BatchOutPath(args.out_path, i);
    Status st = WriteCsv(outputs[i], out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
                   st.ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("augmented table (%zu rows x %zu columns) -> %s\n",
                outputs[i].num_rows(), outputs[i].num_columns(),
                out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

// Socket mode: forward every batch to a running daemon, one connection per
// in-flight batch (capped), so the daemon's batcher can coalesce them.
int RunTransformSocket(const TransformArgs& args) {
  std::vector<Table> batches;
  for (const std::string& path : args.in_paths) {
    auto batch = ReadCsv(path);
    if (!batch.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", path.c_str(),
                   batch.status().ToString().c_str());
      return 1;
    }
    batches.push_back(std::move(batch).ValueOrDie());
  }
  const uint64_t deadline_us =
      args.deadline_ms > 0 ? static_cast<uint64_t>(args.deadline_ms) * 1000 : 0;

  WallTimer timer;
  const size_t n = batches.size();
  std::vector<Status> statuses(n, Status::OK());
  std::vector<Table> outputs(n);
  const size_t parallel = std::min<size_t>(n, 8);
  std::atomic<size_t> next{0};
  std::vector<std::thread> senders;
  senders.reserve(parallel);
  for (size_t t = 0; t < parallel; ++t) {
    senders.emplace_back([&] {
      auto client = serve::ServeClient::ConnectUnix(args.socket_path);
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (!client.ok()) {
          statuses[i] = client.status();
          continue;
        }
        auto out = client.value().Transform(args.plan_name, batches[i],
                                            deadline_us);
        if (out.ok()) {
          outputs[i] = std::move(out).ValueOrDie();
        } else {
          statuses[i] = out.status();
        }
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  std::printf("transformed %zu batch(es) via %s in %.3fs\n", n,
              args.socket_path.c_str(), timer.Seconds());
  return WriteBatchOutputs(statuses, outputs, args);
}

int RunTransform(const TransformArgs& args) {
  if (!args.socket_path.empty()) return RunTransformSocket(args);
  // Applies to the plan compile below (the planner resolves the morsel size
  // when the serving plan is compiled); beats FEATLIB_MORSEL_ROWS.
  if (args.morsel_rows >= 0) {
    FeatAugConfig::Global().morsel_rows =
        static_cast<size_t>(args.morsel_rows);
  }
  auto relevant = ReadCsv(args.relevant_path);
  if (!relevant.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.relevant_path.c_str(),
                 relevant.status().ToString().c_str());
    return 1;
  }

  // Load + validate + compile: the plan's artifacts (group index, masks,
  // materializations) are built exactly once, before the first batch.
  WallTimer timer;
  auto fitted = LoadFittedAugmenter(args.plan_path, relevant.value());
  if (!fitted.ok()) {
    std::fprintf(stderr, "loading %s: %s\n", args.plan_path.c_str(),
                 fitted.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded plan %s: %zu features, compiled in %.3fs\n",
              args.plan_path.c_str(), fitted.value()->num_features(),
              timer.Seconds());

  std::vector<Table> batches;
  for (const std::string& path : args.in_paths) {
    auto batch = ReadCsv(path);
    if (!batch.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", path.c_str(),
                   batch.status().ToString().c_str());
      return 1;
    }
    batches.push_back(std::move(batch).ValueOrDie());
  }

  // Stream the batches through the serving batcher on the one warm handle
  // — the same admission path the daemon uses: submissions coalesce into
  // TransformManyIsolated fan-outs with per-batch failure isolation. The
  // deadline rides on each request; the memory budget applies per fan-out.
  std::shared_ptr<const FittedAugmenter> handle(std::move(fitted).ValueOrDie());
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch_size = 16;
  batcher_options.max_delay_us = 200;
  if (args.memory_budget_mb > 0) {
    batcher_options.memory_budget_bytes =
        static_cast<size_t>(args.memory_budget_mb) << 20;
  }
  serve::Batcher batcher(batcher_options);

  timer.Restart();
  const size_t n = batches.size();
  std::vector<Status> statuses(n, Status::OK());
  std::vector<Table> outputs(n);
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done_count = 0;
  const serve::Batcher::Clock::time_point deadline =
      args.deadline_ms > 0
          ? serve::Batcher::Clock::now() +
                std::chrono::milliseconds(args.deadline_ms)
          : serve::Batcher::Clock::time_point::max();
  for (size_t i = 0; i < n; ++i) {
    serve::Batcher::Request request;
    request.handle = handle;
    request.batch = batches[i];
    request.deadline = deadline;
    request.done = [&, i](Status status, Table table) {
      std::lock_guard<std::mutex> lock(done_mu);
      statuses[i] = std::move(status);
      outputs[i] = std::move(table);
      ++done_count;
      done_cv.notify_one();
    };
    Status admitted = batcher.Submit("cli", std::move(request));
    if (!admitted.ok()) {
      std::lock_guard<std::mutex> lock(done_mu);
      statuses[i] = admitted;
      ++done_count;
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done_count == n; });
  }
  batcher.Shutdown();
  std::printf(
      "transformed %zu batch(es) in %.3fs (warm handle, %zu fan-out(s))\n",
      n, timer.Seconds(), batcher.num_flushes());
  return WriteBatchOutputs(statuses, outputs, args);
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch: "transform" serves a shipped plan; "fit" (or no
  // subcommand, for backwards compatibility) runs the search.
  if (argc > 1 && std::strcmp(argv[1], "transform") == 0) {
    TransformArgs args;
    if (!ParseTransform(argc - 1, argv + 1, &args)) return 2;
    return RunTransform(args);
  }
  int offset = (argc > 1 && std::strcmp(argv[1], "fit") == 0) ? 1 : 0;
  CliArgs args;
  if (!Parse(argc - offset, argv + offset, &args)) return 2;
  return RunCli(args);
}

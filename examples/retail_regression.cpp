/// \file retail_regression.cpp
/// \brief Regression scenario (the paper's Merchant/Elo task, RMSE):
/// predicting a merchant loyalty score from transaction logs. Demonstrates
/// FeatAug on a non-classification task plus CSV export of the augmented
/// training table for downstream tooling.
///
///   ./retail_regression [output.csv]

#include <cstdio>

#include "core/augmenter.h"
#include "data/synthetic.h"
#include "table/csv.h"

using namespace featlib;

int main(int argc, char** argv) {
  SyntheticOptions data_options;
  data_options.n_train = 1500;
  data_options.avg_logs_per_entity = 12;
  data_options.seed = 11;
  const DatasetBundle bundle = MakeMerchant(data_options);
  std::printf("Merchant scenario: %zu merchants, %zu transactions (regression)\n",
              bundle.training.num_rows(), bundle.relevant.num_rows());

  FeatAugOptions options;
  options.n_templates = 4;
  options.queries_per_template = 5;
  options.evaluator.model = ModelKind::kXgb;
  options.evaluator.metric = MetricKind::kRmse;
  options.seed = 23;

  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  auto* evaluator = feataug.evaluator();
  const double baseline = evaluator->BaselineModelScore().value();
  const double augmented_rmse = evaluator->TestScore(plan.value().queries).value();
  std::printf("XGB RMSE: base features %.4f  ->  augmented %.4f\n", baseline,
              augmented_rmse);

  std::printf("\nTop queries:\n");
  const size_t show = std::min<size_t>(5, plan.value().queries.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  [valid RMSE %.4f] %s\n", plan.value().valid_metrics[i],
                plan.value().queries[i].CacheKey().c_str());
  }

  // Compile the plan into a serving handle once; Transform is the repeated
  // cheap phase (replaces the deprecated Apply shim).
  auto fitted = feataug.MakeFitted(plan.value());
  if (!fitted.ok()) {
    std::fprintf(stderr, "MakeFitted failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  auto augmented = fitted.value()->Transform(bundle.training);
  if (!augmented.ok()) {
    std::fprintf(stderr, "Transform failed: %s\n",
                 augmented.status().ToString().c_str());
    return 1;
  }
  const std::string path = argc > 1 ? argv[1] : "/tmp/merchant_augmented.csv";
  Status st = WriteCsv(augmented.value(), path);
  if (!st.ok()) {
    std::fprintf(stderr, "CSV export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nAugmented table (%zu columns) written to %s\n",
              augmented.value().num_columns(), path.c_str());
  return 0;
}

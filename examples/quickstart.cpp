/// \file quickstart.cpp
/// \brief Minimal end-to-end FeatAug walkthrough on the paper's running
/// example: a User_Info training table and a one-to-many User_Logs table.
///
/// Builds the two tables inline, runs the SQL Query Generation component on
/// an explicit query template, prints the best predicate-aware SQL queries
/// it finds, and materializes the augmented training table (Def. 3).
///
///   ./quickstart

#include <cstdio>

#include "core/feataug.h"
#include "common/rng.h"

using namespace featlib;

namespace {

// User_Info: one row per customer. The label ("will buy a Kindle next
// month") depends on how much the customer recently spent on electronics —
// the signal FeatAug must discover via a predicate-aware query.
struct Scenario {
  Table user_info;
  Table user_logs;
};

Scenario BuildScenario() {
  Rng rng(7);
  const size_t n_users = 600;
  const int64_t t0 = 1690000000;          // log window start
  const int64_t t_recent = t0 + 60 * 86400;  // "recent" = last month of logs

  std::vector<int64_t> cname(n_users);
  std::vector<double> age(n_users);
  std::vector<int64_t> label(n_users);
  std::vector<double> latent(n_users);
  for (size_t u = 0; u < n_users; ++u) {
    cname[u] = static_cast<int64_t>(u);
    age[u] = 20 + 40 * rng.Uniform();
    latent[u] = rng.Normal();
  }

  Column l_cname(DataType::kInt64), l_price(DataType::kDouble);
  Column l_dept(DataType::kString), l_ts(DataType::kDatetime);
  const char* departments[] = {"Electronics", "Books", "Grocery", "Toys"};
  for (size_t u = 0; u < n_users; ++u) {
    const int64_t n_logs = 3 + rng.Poisson(8);
    for (int64_t i = 0; i < n_logs; ++i) {
      const char* dept = departments[rng.UniformInt(4)];
      const int64_t ts = rng.UniformRange(t0, t0 + 90 * 86400);
      const bool golden =
          std::string(dept) == "Electronics" && ts >= t_recent;
      l_cname.AppendInt(cname[u]);
      l_price.AppendDouble(golden ? 40 + 15 * latent[u] + rng.Normal(0, 3)
                                  : 40 + rng.Normal(0, 15));
      l_dept.AppendString(dept);
      l_ts.AppendInt(ts);
    }
    label[u] = latent[u] + 0.3 * rng.Normal() > 0 ? 1 : 0;
  }

  Scenario s;
  FEAT_CHECK(s.user_info.AddColumn("cname", Column::FromInts(DataType::kInt64, cname)).ok(), "");
  FEAT_CHECK(s.user_info.AddColumn("age", Column::FromDoubles(age)).ok(), "");
  FEAT_CHECK(s.user_info.AddColumn("label", Column::FromInts(DataType::kInt64, label)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("cname", std::move(l_cname)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("pprice", std::move(l_price)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("department", std::move(l_dept)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("timestamp", std::move(l_ts)).ok(), "");
  return s;
}

}  // namespace

int main() {
  Scenario s = BuildScenario();
  std::printf("User_Info: %zu rows  |  User_Logs: %zu rows\n",
              s.user_info.num_rows(), s.user_logs.num_rows());

  // Describe the problem: label, base features, template ingredients.
  FeatAugProblem problem;
  problem.training = s.user_info;
  problem.label_col = "label";
  problem.base_feature_cols = {"age"};
  problem.relevant = s.user_logs;
  problem.task = TaskKind::kBinaryClassification;
  problem.agg_functions = {AggFunction::kSum, AggFunction::kAvg,
                           AggFunction::kMax, AggFunction::kCount};
  problem.agg_attrs = {"pprice"};
  problem.fk_attrs = {"cname"};
  problem.candidate_where_attrs = {"department", "timestamp"};

  FeatAugOptions options;
  options.n_templates = 2;
  options.queries_per_template = 3;
  options.evaluator.model = ModelKind::kXgb;
  options.seed = 42;

  FeatAug feataug(std::move(problem), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDiscovered predicate-aware SQL queries:\n");
  for (size_t i = 0; i < plan.value().queries.size(); ++i) {
    std::printf("\n-- feature %s (validation AUC %.4f)\n%s\n",
                plan.value().feature_names[i].c_str(),
                plan.value().valid_metrics[i],
                plan.value().queries[i].ToSql("User_Logs", s.user_logs).c_str());
  }

  auto baseline = feataug.evaluator()->BaselineModelScore();
  auto augmented_score = feataug.evaluator()->TestScore(plan.value().queries);
  std::printf("\nXGB AUC:  base features only %.4f  ->  augmented %.4f\n",
              baseline.value(), augmented_score.value());

  auto augmented = feataug.Apply(plan.value(), s.user_info);
  std::printf("\nAugmented training table (first rows):\n%s",
              augmented.value().Head(5).ToString().c_str());
  return 0;
}

/// \file quickstart.cpp
/// \brief Minimal end-to-end FeatAug walkthrough on the paper's running
/// example: a User_Info training table and a one-to-many User_Logs table.
///
/// Builds the two tables inline, fits through the unified Augmenter
/// interface (fit once), prints the best predicate-aware SQL queries it
/// finds, and materializes the augmented training table (Def. 3) through
/// the long-lived FittedAugmenter serving handle (transform many times).
///
/// Migration from the pre-Augmenter API (old call -> new call):
///
///   FeatAug(problem, opts) + Fit()      -> MakeFeatAugAugmenter(...)->Fit()
///   feataug.Apply(plan, batch)          -> fitted->Transform(batch)
///   feataug.ApplyToDataset(plan, batch) -> fitted->TransformToDataset(...)
///   per-batch loop over Apply           -> fitted->TransformMany(batches)
///   ReadAugmentationPlan + Apply        -> LoadFittedAugmenter(path, R)
///
///   ./quickstart

#include <cstdio>

#include "core/augmenter.h"
#include "common/rng.h"

using namespace featlib;

namespace {

// User_Info: one row per customer. The label ("will buy a Kindle next
// month") depends on how much the customer recently spent on electronics —
// the signal FeatAug must discover via a predicate-aware query.
struct Scenario {
  Table user_info;
  Table user_logs;
};

Scenario BuildScenario() {
  Rng rng(7);
  const size_t n_users = 600;
  const int64_t t0 = 1690000000;          // log window start
  const int64_t t_recent = t0 + 60 * 86400;  // "recent" = last month of logs

  std::vector<int64_t> cname(n_users);
  std::vector<double> age(n_users);
  std::vector<int64_t> label(n_users);
  std::vector<double> latent(n_users);
  for (size_t u = 0; u < n_users; ++u) {
    cname[u] = static_cast<int64_t>(u);
    age[u] = 20 + 40 * rng.Uniform();
    latent[u] = rng.Normal();
  }

  Column l_cname(DataType::kInt64), l_price(DataType::kDouble);
  Column l_dept(DataType::kString), l_ts(DataType::kDatetime);
  const char* departments[] = {"Electronics", "Books", "Grocery", "Toys"};
  for (size_t u = 0; u < n_users; ++u) {
    const int64_t n_logs = 3 + rng.Poisson(8);
    for (int64_t i = 0; i < n_logs; ++i) {
      const char* dept = departments[rng.UniformInt(4)];
      const int64_t ts = rng.UniformRange(t0, t0 + 90 * 86400);
      const bool golden =
          std::string(dept) == "Electronics" && ts >= t_recent;
      l_cname.AppendInt(cname[u]);
      l_price.AppendDouble(golden ? 40 + 15 * latent[u] + rng.Normal(0, 3)
                                  : 40 + rng.Normal(0, 15));
      l_dept.AppendString(dept);
      l_ts.AppendInt(ts);
    }
    label[u] = latent[u] + 0.3 * rng.Normal() > 0 ? 1 : 0;
  }

  Scenario s;
  FEAT_CHECK(s.user_info.AddColumn("cname", Column::FromInts(DataType::kInt64, cname)).ok(), "");
  FEAT_CHECK(s.user_info.AddColumn("age", Column::FromDoubles(age)).ok(), "");
  FEAT_CHECK(s.user_info.AddColumn("label", Column::FromInts(DataType::kInt64, label)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("cname", std::move(l_cname)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("pprice", std::move(l_price)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("department", std::move(l_dept)).ok(), "");
  FEAT_CHECK(s.user_logs.AddColumn("timestamp", std::move(l_ts)).ok(), "");
  return s;
}

}  // namespace

int main() {
  Scenario s = BuildScenario();
  std::printf("User_Info: %zu rows  |  User_Logs: %zu rows\n",
              s.user_info.num_rows(), s.user_logs.num_rows());

  // Describe the problem: label, base features, template ingredients.
  FeatAugProblem problem;
  problem.training = s.user_info;
  problem.label_col = "label";
  problem.base_feature_cols = {"age"};
  problem.relevant = s.user_logs;
  problem.task = TaskKind::kBinaryClassification;
  problem.agg_functions = {AggFunction::kSum, AggFunction::kAvg,
                           AggFunction::kMax, AggFunction::kCount};
  problem.agg_attrs = {"pprice"};
  problem.fk_attrs = {"cname"};
  problem.candidate_where_attrs = {"department", "timestamp"};

  FeatAugOptions options;
  options.n_templates = 2;
  options.queries_per_template = 3;
  options.evaluator.model = ModelKind::kXgb;
  options.seed = 42;

  // Phase 1: fit once. The Augmenter interface is the same for FeatAug,
  // MultiTableFeatAug and every baseline (baselines/augmenters.h).
  std::unique_ptr<Augmenter> augmenter =
      MakeFeatAugAugmenter(std::move(problem), options);
  auto fitted = augmenter->Fit();
  if (!fitted.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n", fitted.status().ToString().c_str());
    return 1;
  }
  const FittedAugmenter& handle = *fitted.value();

  std::printf("\nDiscovered predicate-aware SQL queries:\n");
  const std::vector<AggQuery> queries = handle.AllQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("\n-- feature %s (validation AUC %.4f)\n%s\n",
                handle.feature_names()[i].c_str(), handle.valid_metrics()[i],
                queries[i].ToSql("User_Logs", s.user_logs).c_str());
  }

  auto baseline = augmenter->evaluator()->BaselineModelScore();
  auto augmented_score = augmenter->evaluator()->TestScore(queries);
  std::printf("\nXGB AUC:  base features only %.4f  ->  augmented %.4f\n",
              baseline.value(), augmented_score.value());

  // Phase 2: transform many times. The handle holds the compiled plan
  // (group index, masks, materializations) warm across calls and is safe
  // to share between serving threads.
  auto augmented = handle.Transform(s.user_info);
  if (!augmented.ok()) {
    std::fprintf(stderr, "Transform failed: %s\n",
                 augmented.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAugmented training table (first rows):\n%s",
              augmented.value().Head(5).ToString().c_str());
  return 0;
}

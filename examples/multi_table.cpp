/// \file multi_table.cpp
/// \brief Multi-table walkthrough: the §III reductions end-to-end.
///
/// Starts from a *normalized* Instacart-style schema — a base table, an
/// order_items fact chained through products and departments dimensions,
/// and a second browse_log fact — declares it as a RelationGraph, flattens
/// the deep-layer chain into relevant tables, and runs MultiTableFeatAug
/// with a proxy-weighted feature budget across both facts.
///
///   ./multi_table [n_train]

#include <cstdio>
#include <cstdlib>

#include "core/augmenter.h"
#include "core/multi_table.h"
#include "data/multi_table_data.h"
#include "ml/evaluator.h"

using namespace featlib;

int main(int argc, char** argv) {
  SyntheticOptions data_options;
  data_options.n_train = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 800;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = 42;
  const MultiTableBundle bundle = MakeInstacartMultiTable(data_options);

  std::printf("Raw schema (normalized, before any join):\n");
  std::printf("  training     %6zu rows  %zu cols\n", bundle.training.num_rows(),
              bundle.training.num_columns());
  std::printf("  order_items  %6zu rows  %zu cols  (fact #1)\n",
              bundle.order_items.num_rows(), bundle.order_items.num_columns());
  std::printf("  products     %6zu rows  %zu cols  (lookup)\n",
              bundle.products.num_rows(), bundle.products.num_columns());
  std::printf("  departments  %6zu rows  %zu cols  (second-hop lookup)\n",
              bundle.departments.num_rows(), bundle.departments.num_columns());
  std::printf("  browse_log   %6zu rows  %zu cols  (fact #2)\n\n",
              bundle.browse_log.num_rows(), bundle.browse_log.num_columns());

  // ---- Declare the relationships and flatten (deep-layer preparation). ----
  auto graph = bundle.BuildGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto problem = MultiTableProblem::FromGraph(graph.value(), "training", "label",
                                              TaskKind::kBinaryClassification);
  if (!problem.ok()) {
    std::fprintf(stderr, "problem: %s\n", problem.status().ToString().c_str());
    return 1;
  }
  for (const RelevantInput& input : problem.value().relevants) {
    std::printf("Flattened relevant table '%s': %zu rows, %zu cols, "
                "%zu agg attrs, %zu WHERE candidates\n",
                input.name.c_str(), input.relevant.num_rows(),
                input.relevant.num_columns(), input.agg_attrs.size(),
                input.candidate_where_attrs.size());
  }

  // ---- Fit FeatAug across both facts with a shared feature budget. ----
  MultiTableOptions options;
  options.total_features = 12;
  options.queries_per_template = 3;
  options.allocation = BudgetAllocation::kProxyWeighted;
  options.per_table.generator.warmup_iterations = 60;
  options.per_table.generator.warmup_top_k = 8;
  options.per_table.generator.generation_iterations = 12;
  options.per_table.qti.beam_width = 2;
  options.per_table.qti.max_depth = 2;
  options.per_table.evaluator.model = ModelKind::kLogisticRegression;
  options.per_table.evaluator.metric = MetricKind::kAuc;
  options.seed = 7;

  const Table training = problem.value().training;
  MultiTableFeatAug feataug(std::move(problem).ValueOrDie(), options);
  auto plan = feataug.Fit();
  if (!plan.ok()) {
    std::fprintf(stderr, "fit: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("\nBudget allocation (proxy-weighted):\n");
  for (const auto& tp : plan.value().tables) {
    std::printf("  %-12s probe=%.4f  budget=%d  found=%zu\n", tp.name.c_str(),
                tp.probe_score, tp.budget_features, tp.plan.queries.size());
  }

  std::printf("\nDiscovered queries:\n");
  for (const auto& tp : plan.value().tables) {
    const RelevantInput* input = nullptr;
    // The flattened tables were moved into the driver; re-render SQL against
    // the raw fact for naming only.
    for (size_t i = 0; i < tp.plan.queries.size(); ++i) {
      (void)input;
      std::printf("-- [%s] AUC %.4f\n%s\n\n", tp.name.c_str(),
                  tp.plan.valid_metrics[i],
                  tp.plan.queries[i].ToSql(tp.name, bundle.order_items).c_str());
    }
  }

  // One serving handle over all relevant tables: every table's artifacts
  // are compiled once, feature names come out qualified "<table>__<name>".
  auto fitted = feataug.MakeFitted(plan.value());
  if (!fitted.ok()) {
    std::fprintf(stderr, "make fitted: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  auto augmented = fitted.value()->Transform(training);
  if (!augmented.ok()) {
    std::fprintf(stderr, "transform: %s\n",
                 augmented.status().ToString().c_str());
    return 1;
  }
  std::printf("Augmented training table: %zu rows x %zu cols (was %zu)\n",
              augmented.value().num_rows(), augmented.value().num_columns(),
              training.num_columns());
  std::printf("Sample:\n%s\n", augmented.value().Head(5).ToString(5).c_str());
  return 0;
}

/// \file feataug_serve.cpp
/// \brief The serving daemon: load fitted plans, keep their warm artifacts
/// resident, and serve concurrent Transform requests over a socket — the
/// online half of "fit offline, ship the SQL artifact, serve online".
///
///   feataug_serve --plan-dir=DIR [--socket=/path/daemon.sock] [--tcp-port=N]
///                 [--warm-cap-mb=512] [--max-batch=16] [--max-delay-us=500]
///                 [--workers=2] [--preload]
///
/// DIR holds one `<name>.sql` + `<name>.relevant.csv` pair per plan (the
/// artifacts `feataug_cli fit --plan-out` ships). Plans compile lazily on
/// first request and stay warm under an LRU byte cap; concurrent small
/// requests for the same plan coalesce into one fan-out (see
/// docs/ARCHITECTURE.md, "Serving daemon"). SIGTERM/SIGINT drain
/// gracefully: new connections are refused, every in-flight request's
/// response is delivered, then the process exits.
///
/// Clients: `feataug_cli transform --socket=/path/daemon.sock
/// --plan-name=NAME --in=batch.csv` or the serve::ServeClient library.

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/client.h"
#include "serve/plan_registry.h"
#include "serve/server.h"

using namespace featlib;

namespace {

struct ServeArgs {
  std::string plan_dir;
  std::string socket_path = "/tmp/feataug_serve.sock";
  int tcp_port = -1;
  long long warm_cap_mb = 512;
  long long max_batch = 16;
  long long max_delay_us = 500;
  long long workers = 2;
  bool preload = false;
};

bool Parse(int argc, char** argv, ServeArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--plan-dir=")) args->plan_dir = v;
    else if (const char* v = value_of("--socket=")) args->socket_path = v;
    else if (const char* v = value_of("--tcp-port=")) args->tcp_port = std::atoi(v);
    else if (const char* v = value_of("--warm-cap-mb=")) args->warm_cap_mb = std::atoll(v);
    else if (const char* v = value_of("--max-batch=")) args->max_batch = std::atoll(v);
    else if (const char* v = value_of("--max-delay-us=")) args->max_delay_us = std::atoll(v);
    else if (const char* v = value_of("--workers=")) args->workers = std::atoll(v);
    else if (arg == "--preload") args->preload = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->plan_dir.empty()) {
    std::fprintf(stderr, "required: --plan-dir=DIR (with <name>.sql + "
                         "<name>.relevant.csv pairs)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  if (!Parse(argc, argv, &args)) return 2;

  serve::PlanRegistryOptions registry_options;
  registry_options.warm_cap_bytes =
      args.warm_cap_mb <= 0 ? 0 : static_cast<size_t>(args.warm_cap_mb) << 20;
  serve::PlanRegistry registry(registry_options);
  size_t num_plans = 0;
  Status st = registry.DiscoverPlans(args.plan_dir, &num_plans);
  if (!st.ok()) {
    std::fprintf(stderr, "scanning %s: %s\n", args.plan_dir.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  if (num_plans == 0) {
    std::fprintf(stderr, "no plan pairs found in %s\n", args.plan_dir.c_str());
    return 1;
  }
  std::printf("feataug_serve: %zu plan(s) in %s\n", num_plans,
              args.plan_dir.c_str());
  if (args.preload) {
    for (const serve::PlanInfo& info : registry.List()) {
      auto handle = registry.Acquire(info.name);
      if (!handle.ok()) {
        std::fprintf(stderr, "preload %s: %s\n", info.name.c_str(),
                     handle.status().ToString().c_str());
      } else {
        std::printf("preloaded %s (%zu features)\n", info.name.c_str(),
                    handle.value()->num_features());
      }
    }
  }

  serve::ServerOptions options;
  options.unix_socket_path = args.socket_path;
  options.tcp_port = args.tcp_port;
  options.batcher.max_batch_size =
      args.max_batch < 1 ? 1 : static_cast<size_t>(args.max_batch);
  options.batcher.max_delay_us = args.max_delay_us;
  options.batcher.num_workers = args.workers < 1 ? 1 : static_cast<int>(args.workers);

  serve::Server server(&registry, options);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!args.socket_path.empty()) {
    std::printf("listening on unix socket %s\n", args.socket_path.c_str());
  }
  if (args.tcp_port >= 0) {
    std::printf("listening on 127.0.0.1:%d\n", server.tcp_port());
  }
  st = server.EnableSignalDrain();
  if (!st.ok()) {
    std::fprintf(stderr, "signal handler: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving (SIGTERM drains gracefully)\n");
  std::fflush(stdout);
  server.Wait();
  std::printf("drained: %llu connection(s), %llu request(s), "
              "%zu coalesced flush(es)\n",
              static_cast<unsigned long long>(server.num_connections_accepted()),
              static_cast<unsigned long long>(server.num_requests_served()),
              server.batcher().num_coalesced_flushes());
  return 0;
}

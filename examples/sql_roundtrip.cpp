/// \file sql_roundtrip.cpp
/// \brief Persisting and reloading an augmentation plan as SQL text.
///
/// A production workflow rarely ends at Fit(): the discovered queries are
/// reviewed by a data scientist, versioned, sometimes hand-edited, and
/// re-applied to fresh data. This example shows that loop:
///
///   1. fit FeatAug on a synthetic Tmall-style dataset,
///   2. render the plan to a SQL script (AggQuery::ToSql),
///   3. parse the script back (ParseAggQueryScript), hand-editing one
///      predicate on the way,
///   4. re-apply the reloaded plan to the training table and compare,
///   5. load the shipped SQL artifact straight into a FittedAugmenter
///      (LoadFittedAugmenter) and serve a batch from the warm handle.
///
///   ./sql_roundtrip

#include <cstdio>
#include <string>

#include "core/plan_io.h"
#include "data/synthetic.h"
#include "query/executor.h"
#include "query/sql_parser.h"

using namespace featlib;

int main() {
  SyntheticOptions data_options;
  data_options.n_train = 500;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = 21;
  const DatasetBundle bundle = MakeTmall(data_options);

  // Step 1: a small fitted plan. For brevity, use the golden query plus an
  // unpredicated variant instead of a full Fit() run (see quickstart for
  // the search itself).
  AggQuery weak = bundle.golden_query;
  weak.predicates.clear();
  std::vector<AggQuery> plan{bundle.golden_query, weak};

  // Step 2: render the plan to one SQL script.
  std::string script;
  for (const AggQuery& q : plan) {
    script += q.ToSql("user_logs", bundle.relevant) + ";\n\n";
  }
  std::printf("Persisted plan:\n%s", script.c_str());

  // Step 3: reload, with a simulated review edit — tighten the first
  // query's time window by text substitution before parsing.
  auto reloaded = ParseAggQueryScript(script);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "parse: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Reloaded %zu queries from SQL.\n\n", reloaded.value().size());

  for (const ParsedAggQuery& pq : reloaded.value()) {
    // Re-validate against the actual schema before executing.
    auto checked = ParseAggQuerySql(
        pq.query.ToSql(pq.relation, bundle.relevant), bundle.relevant);
    if (!checked.ok()) {
      std::fprintf(stderr, "schema check: %s\n",
                   checked.status().ToString().c_str());
      return 1;
    }
  }

  // Step 4: apply both plans and verify the features agree.
  for (size_t i = 0; i < plan.size(); ++i) {
    auto original = ComputeFeatureColumn(plan[i], bundle.training, bundle.relevant);
    auto roundtrip = ComputeFeatureColumn(reloaded.value()[i].query,
                                          bundle.training, bundle.relevant);
    if (!original.ok() || !roundtrip.ok()) {
      std::fprintf(stderr, "feature computation failed\n");
      return 1;
    }
    size_t mismatches = 0;
    for (size_t r = 0; r < original.value().size(); ++r) {
      const double a = original.value()[r];
      const double b = roundtrip.value()[r];
      const bool both_nan = std::isnan(a) && std::isnan(b);
      if (!both_nan && a != b) ++mismatches;
    }
    std::printf("query %zu: %zu rows, %zu mismatches after round-trip\n", i,
                original.value().size(), mismatches);
    if (mismatches != 0) return 1;
  }

  // Step 5: the first-class serving path — write the plan file, load it
  // straight into a warm FittedAugmenter, transform a batch.
  AugmentationPlan shipped;
  shipped.queries = plan;
  const std::string plan_path = "/tmp/sql_roundtrip_plan.sql";
  Status write_status =
      WriteAugmentationPlan(shipped, "user_logs", bundle.relevant, plan_path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "write plan: %s\n", write_status.ToString().c_str());
    return 1;
  }
  auto fitted = LoadFittedAugmenter(plan_path, bundle.relevant);
  if (!fitted.ok()) {
    std::fprintf(stderr, "load fitted: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  auto served = fitted.value()->Transform(bundle.training);
  if (!served.ok()) {
    std::fprintf(stderr, "transform: %s\n", served.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nServing handle from %s: %zu features appended to a %zu-row batch.\n",
      plan_path.c_str(), fitted.value()->num_features(),
      served.value().num_rows());

  // A rejected edit: strict comparisons are outside the Def. 2 class, and
  // the parser says so instead of silently reinterpreting.
  const std::string bad =
      "SELECT user_id, merchant_id, AVG(pprice) AS f FROM user_logs "
      "WHERE ts > 100 GROUP BY user_id, merchant_id";
  auto rejected = ParseAggQuerySql(bad);
  std::printf("\nEditing to a strict '>' is rejected as expected:\n  %s\n",
              rejected.status().ToString().c_str());
  return rejected.ok() ? 1 : 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_hpo_ablation.dir/bench/bench_hpo_ablation.cc.o"
  "CMakeFiles/bench_hpo_ablation.dir/bench/bench_hpo_ablation.cc.o.d"
  "bench_hpo_ablation"
  "bench_hpo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

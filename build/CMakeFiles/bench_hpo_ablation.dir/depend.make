# Empty dependencies file for bench_hpo_ablation.
# This may be replaced when dependencies are built.

# Empty dependencies file for template_id_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/template_id_test.dir/tests/template_id_test.cc.o"
  "CMakeFiles/template_id_test.dir/tests/template_id_test.cc.o.d"
  "template_id_test"
  "template_id_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for relation_graph_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/relation_graph_test.dir/tests/relation_graph_test.cc.o"
  "CMakeFiles/relation_graph_test.dir/tests/relation_graph_test.cc.o.d"
  "relation_graph_test"
  "relation_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

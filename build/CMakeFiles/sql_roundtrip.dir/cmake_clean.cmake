file(REMOVE_RECURSE
  "CMakeFiles/sql_roundtrip.dir/examples/sql_roundtrip.cpp.o"
  "CMakeFiles/sql_roundtrip.dir/examples/sql_roundtrip.cpp.o.d"
  "sql_roundtrip"
  "sql_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sql_roundtrip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfeatlib.a"
)

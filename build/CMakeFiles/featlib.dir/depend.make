# Empty dependencies file for featlib.
# This may be replaced when dependencies are built.

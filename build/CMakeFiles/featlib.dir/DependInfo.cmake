
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arda.cc" "CMakeFiles/featlib.dir/src/baselines/arda.cc.o" "gcc" "CMakeFiles/featlib.dir/src/baselines/arda.cc.o.d"
  "/root/repo/src/baselines/autofeature.cc" "CMakeFiles/featlib.dir/src/baselines/autofeature.cc.o" "gcc" "CMakeFiles/featlib.dir/src/baselines/autofeature.cc.o.d"
  "/root/repo/src/baselines/featuretools.cc" "CMakeFiles/featlib.dir/src/baselines/featuretools.cc.o" "gcc" "CMakeFiles/featlib.dir/src/baselines/featuretools.cc.o.d"
  "/root/repo/src/baselines/random_aug.cc" "CMakeFiles/featlib.dir/src/baselines/random_aug.cc.o" "gcc" "CMakeFiles/featlib.dir/src/baselines/random_aug.cc.o.d"
  "/root/repo/src/baselines/selectors.cc" "CMakeFiles/featlib.dir/src/baselines/selectors.cc.o" "gcc" "CMakeFiles/featlib.dir/src/baselines/selectors.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/featlib.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/featlib.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/featlib.dir/src/common/status.cc.o" "gcc" "CMakeFiles/featlib.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "CMakeFiles/featlib.dir/src/common/str_util.cc.o" "gcc" "CMakeFiles/featlib.dir/src/common/str_util.cc.o.d"
  "/root/repo/src/core/codec.cc" "CMakeFiles/featlib.dir/src/core/codec.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/codec.cc.o.d"
  "/root/repo/src/core/feataug.cc" "CMakeFiles/featlib.dir/src/core/feataug.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/feataug.cc.o.d"
  "/root/repo/src/core/feature_eval.cc" "CMakeFiles/featlib.dir/src/core/feature_eval.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/feature_eval.cc.o.d"
  "/root/repo/src/core/generator.cc" "CMakeFiles/featlib.dir/src/core/generator.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/generator.cc.o.d"
  "/root/repo/src/core/multi_table.cc" "CMakeFiles/featlib.dir/src/core/multi_table.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/multi_table.cc.o.d"
  "/root/repo/src/core/plan_io.cc" "CMakeFiles/featlib.dir/src/core/plan_io.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/plan_io.cc.o.d"
  "/root/repo/src/core/query_template.cc" "CMakeFiles/featlib.dir/src/core/query_template.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/query_template.cc.o.d"
  "/root/repo/src/core/template_id.cc" "CMakeFiles/featlib.dir/src/core/template_id.cc.o" "gcc" "CMakeFiles/featlib.dir/src/core/template_id.cc.o.d"
  "/root/repo/src/data/multi_table_data.cc" "CMakeFiles/featlib.dir/src/data/multi_table_data.cc.o" "gcc" "CMakeFiles/featlib.dir/src/data/multi_table_data.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/featlib.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/featlib.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/hpo/hyperband.cc" "CMakeFiles/featlib.dir/src/hpo/hyperband.cc.o" "gcc" "CMakeFiles/featlib.dir/src/hpo/hyperband.cc.o.d"
  "/root/repo/src/hpo/smac.cc" "CMakeFiles/featlib.dir/src/hpo/smac.cc.o" "gcc" "CMakeFiles/featlib.dir/src/hpo/smac.cc.o.d"
  "/root/repo/src/hpo/space.cc" "CMakeFiles/featlib.dir/src/hpo/space.cc.o" "gcc" "CMakeFiles/featlib.dir/src/hpo/space.cc.o.d"
  "/root/repo/src/hpo/tpe.cc" "CMakeFiles/featlib.dir/src/hpo/tpe.cc.o" "gcc" "CMakeFiles/featlib.dir/src/hpo/tpe.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "CMakeFiles/featlib.dir/src/ml/dataset.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/dataset.cc.o.d"
  "/root/repo/src/ml/deepfm.cc" "CMakeFiles/featlib.dir/src/ml/deepfm.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/deepfm.cc.o.d"
  "/root/repo/src/ml/evaluator.cc" "CMakeFiles/featlib.dir/src/ml/evaluator.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/evaluator.cc.o.d"
  "/root/repo/src/ml/forest.cc" "CMakeFiles/featlib.dir/src/ml/forest.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/forest.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "CMakeFiles/featlib.dir/src/ml/gbdt.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/linear.cc" "CMakeFiles/featlib.dir/src/ml/linear.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "CMakeFiles/featlib.dir/src/ml/metrics.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/metrics.cc.o.d"
  "/root/repo/src/ml/model.cc" "CMakeFiles/featlib.dir/src/ml/model.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/model.cc.o.d"
  "/root/repo/src/ml/tree.cc" "CMakeFiles/featlib.dir/src/ml/tree.cc.o" "gcc" "CMakeFiles/featlib.dir/src/ml/tree.cc.o.d"
  "/root/repo/src/query/agg_query.cc" "CMakeFiles/featlib.dir/src/query/agg_query.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/agg_query.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "CMakeFiles/featlib.dir/src/query/aggregate.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/aggregate.cc.o.d"
  "/root/repo/src/query/batch_executor.cc" "CMakeFiles/featlib.dir/src/query/batch_executor.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/batch_executor.cc.o.d"
  "/root/repo/src/query/executor.cc" "CMakeFiles/featlib.dir/src/query/executor.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/executor.cc.o.d"
  "/root/repo/src/query/group_index.cc" "CMakeFiles/featlib.dir/src/query/group_index.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/group_index.cc.o.d"
  "/root/repo/src/query/join.cc" "CMakeFiles/featlib.dir/src/query/join.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/join.cc.o.d"
  "/root/repo/src/query/predicate.cc" "CMakeFiles/featlib.dir/src/query/predicate.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/predicate.cc.o.d"
  "/root/repo/src/query/relation_graph.cc" "CMakeFiles/featlib.dir/src/query/relation_graph.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/relation_graph.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "CMakeFiles/featlib.dir/src/query/sql_parser.cc.o" "gcc" "CMakeFiles/featlib.dir/src/query/sql_parser.cc.o.d"
  "/root/repo/src/stats/stats.cc" "CMakeFiles/featlib.dir/src/stats/stats.cc.o" "gcc" "CMakeFiles/featlib.dir/src/stats/stats.cc.o.d"
  "/root/repo/src/table/column.cc" "CMakeFiles/featlib.dir/src/table/column.cc.o" "gcc" "CMakeFiles/featlib.dir/src/table/column.cc.o.d"
  "/root/repo/src/table/csv.cc" "CMakeFiles/featlib.dir/src/table/csv.cc.o" "gcc" "CMakeFiles/featlib.dir/src/table/csv.cc.o.d"
  "/root/repo/src/table/table.cc" "CMakeFiles/featlib.dir/src/table/table.cc.o" "gcc" "CMakeFiles/featlib.dir/src/table/table.cc.o.d"
  "/root/repo/src/table/value.cc" "CMakeFiles/featlib.dir/src/table/value.cc.o" "gcc" "CMakeFiles/featlib.dir/src/table/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

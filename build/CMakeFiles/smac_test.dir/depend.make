# Empty dependencies file for smac_test.
# This may be replaced when dependencies are built.

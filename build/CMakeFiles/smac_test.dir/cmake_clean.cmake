file(REMOVE_RECURSE
  "CMakeFiles/smac_test.dir/tests/smac_test.cc.o"
  "CMakeFiles/smac_test.dir/tests/smac_test.cc.o.d"
  "smac_test"
  "smac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

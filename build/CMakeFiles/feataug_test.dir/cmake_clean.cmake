file(REMOVE_RECURSE
  "CMakeFiles/feataug_test.dir/tests/feataug_test.cc.o"
  "CMakeFiles/feataug_test.dir/tests/feataug_test.cc.o.d"
  "feataug_test"
  "feataug_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feataug_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for feataug_test.
# This may be replaced when dependencies are built.

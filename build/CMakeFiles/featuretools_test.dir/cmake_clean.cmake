file(REMOVE_RECURSE
  "CMakeFiles/featuretools_test.dir/tests/featuretools_test.cc.o"
  "CMakeFiles/featuretools_test.dir/tests/featuretools_test.cc.o.d"
  "featuretools_test"
  "featuretools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/featuretools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for featuretools_test.
# This may be replaced when dependencies are built.

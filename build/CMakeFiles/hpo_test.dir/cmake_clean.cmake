file(REMOVE_RECURSE
  "CMakeFiles/hpo_test.dir/tests/hpo_test.cc.o"
  "CMakeFiles/hpo_test.dir/tests/hpo_test.cc.o.d"
  "hpo_test"
  "hpo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for arda_autofeature_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/arda_autofeature_test.dir/tests/arda_autofeature_test.cc.o"
  "CMakeFiles/arda_autofeature_test.dir/tests/arda_autofeature_test.cc.o.d"
  "arda_autofeature_test"
  "arda_autofeature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_autofeature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/next_purchase.dir/examples/next_purchase.cpp.o"
  "CMakeFiles/next_purchase.dir/examples/next_purchase.cpp.o.d"
  "next_purchase"
  "next_purchase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/next_purchase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

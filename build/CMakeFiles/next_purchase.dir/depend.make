# Empty dependencies file for next_purchase.
# This may be replaced when dependencies are built.

# Empty dependencies file for retail_regression.
# This may be replaced when dependencies are built.

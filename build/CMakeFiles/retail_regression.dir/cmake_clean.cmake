file(REMOVE_RECURSE
  "CMakeFiles/retail_regression.dir/examples/retail_regression.cpp.o"
  "CMakeFiles/retail_regression.dir/examples/retail_regression.cpp.o.d"
  "retail_regression"
  "retail_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

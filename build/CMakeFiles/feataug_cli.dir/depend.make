# Empty dependencies file for feataug_cli.
# This may be replaced when dependencies are built.

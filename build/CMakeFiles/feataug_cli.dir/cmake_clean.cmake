file(REMOVE_RECURSE
  "CMakeFiles/feataug_cli.dir/examples/feataug_cli.cpp.o"
  "CMakeFiles/feataug_cli.dir/examples/feataug_cli.cpp.o.d"
  "feataug_cli"
  "feataug_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feataug_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

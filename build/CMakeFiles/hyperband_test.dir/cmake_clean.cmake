file(REMOVE_RECURSE
  "CMakeFiles/hyperband_test.dir/tests/hyperband_test.cc.o"
  "CMakeFiles/hyperband_test.dir/tests/hyperband_test.cc.o.d"
  "hyperband_test"
  "hyperband_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperband_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

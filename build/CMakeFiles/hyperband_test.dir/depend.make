# Empty dependencies file for hyperband_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/feature_eval_test.dir/tests/feature_eval_test.cc.o"
  "CMakeFiles/feature_eval_test.dir/tests/feature_eval_test.cc.o.d"
  "feature_eval_test"
  "feature_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

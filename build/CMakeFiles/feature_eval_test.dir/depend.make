# Empty dependencies file for feature_eval_test.
# This may be replaced when dependencies are built.

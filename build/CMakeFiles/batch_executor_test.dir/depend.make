# Empty dependencies file for batch_executor_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/batch_executor_test.dir/tests/batch_executor_test.cc.o"
  "CMakeFiles/batch_executor_test.dir/tests/batch_executor_test.cc.o.d"
  "batch_executor_test"
  "batch_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/multi_table.dir/examples/multi_table.cpp.o"
  "CMakeFiles/multi_table.dir/examples/multi_table.cpp.o.d"
  "multi_table"
  "multi_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for multi_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_table.dir/bench/bench_multi_table.cc.o"
  "CMakeFiles/bench_multi_table.dir/bench/bench_multi_table.cc.o.d"
  "bench_multi_table"
  "bench_multi_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_multi_table.
# This may be replaced when dependencies are built.

# Empty dependencies file for template_discovery.
# This may be replaced when dependencies are built.

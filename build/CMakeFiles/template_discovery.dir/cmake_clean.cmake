file(REMOVE_RECURSE
  "CMakeFiles/template_discovery.dir/examples/template_discovery.cpp.o"
  "CMakeFiles/template_discovery.dir/examples/template_discovery.cpp.o.d"
  "template_discovery"
  "template_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

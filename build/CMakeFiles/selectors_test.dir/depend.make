# Empty dependencies file for selectors_test.
# This may be replaced when dependencies are built.

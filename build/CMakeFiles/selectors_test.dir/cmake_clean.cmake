file(REMOVE_RECURSE
  "CMakeFiles/selectors_test.dir/tests/selectors_test.cc.o"
  "CMakeFiles/selectors_test.dir/tests/selectors_test.cc.o.d"
  "selectors_test"
  "selectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/// \file bench_ablation_design.cc
/// \brief Ablations of this implementation's own design choices (DESIGN.md
/// §5) — knobs the paper fixes implicitly or leaves unstated:
///
///   1. TPE gamma (good/bad split quantile) x exploration fraction;
///   2. MI feature binning: quantile vs equi-width (why ProxyScore uses
///      quantile bins);
///   3. warm-up budget: proxy iterations x top-k promoted to real
///      evaluation (§V.C defaults 200/50);
///   4. QTI beam width x max depth (§VI.B defaults).
///
/// Expected shapes: (1) mid-range gamma with a modest exploration fraction
/// is at or near the best cell; (2) quantile binning separates the planted
/// golden feature from the unpredicated weak one by a wide margin while
/// equi-width compresses heavy-tailed aggregates toward zero separation;
/// (3) quality saturates in top-k — a small k already captures the
/// transfer; (4) wider beams/deeper trees buy golden-attribute recall at
/// linear extra cost.

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/codec.h"
#include "core/generator.h"
#include "core/template_id.h"
#include "query/executor.h"
#include "stats/stats.h"

namespace featlib {
namespace bench {
namespace {

// ---------------------------------------------------------------------------
// Section 1: TPE gamma x exploration fraction on the golden pool's MI
// landscape.
// ---------------------------------------------------------------------------
int RunTpeKnobs(const BenchConfig& config, const DatasetBundle& b) {
  const int iterations = config.fast ? 40 : 100;
  const int seeds = config.fast ? 2 : 4;
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  if (!codec.ok()) return 1;
  auto evaluator = MakeEvaluator(b, ModelKind::kLogisticRegression, config.seed);
  if (!evaluator.ok()) return 1;
  FeatureEvaluator eval = std::move(evaluator).ValueOrDie();

  PrintHeader("TPE knobs — " + b.name +
              StrFormat(" (best MI after %d iters)", iterations));
  PrintRow("gamma \\ explore", {"0.00", "0.15", "0.30"});
  for (double gamma : {0.05, 0.15, 0.30}) {
    std::vector<std::string> cells;
    for (double explore : {0.0, 0.15, 0.30}) {
      double best_sum = 0.0;
      for (int s = 0; s < seeds; ++s) {
        TpeOptions tpe_options;
        tpe_options.gamma = gamma;
        tpe_options.exploration_fraction = explore;
        tpe_options.seed = config.seed + 101 * static_cast<uint64_t>(s);
        Tpe tpe(codec.value().space(), tpe_options);
        double best = 0.0;
        for (int i = 0; i < iterations; ++i) {
          const ParamVector v = tpe.Suggest();
          auto query = codec.value().Decode(v);
          if (!query.ok()) continue;
          auto score = eval.ProxyScore(query.value(), ProxyKind::kMutualInformation);
          if (!score.ok()) continue;
          best = std::max(best, score.value());
          tpe.Observe(v, -score.value());
        }
        best_sum += best;
      }
      cells.push_back(FormatMetric(best_sum / seeds));
    }
    PrintRow(StrFormat("gamma=%.2f", gamma), cells);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Section 2: MI binning strategy on planted features.
// ---------------------------------------------------------------------------
int RunMiBinning(const DatasetBundle& b) {
  auto labels_col = b.training.GetColumn(b.label_col);
  if (!labels_col.ok()) return 1;
  std::vector<int> label_bins(b.training.num_rows());
  for (size_t i = 0; i < label_bins.size(); ++i) {
    label_bins[i] = static_cast<int>(labels_col.value()->AsDouble(i));
  }

  // Three aggregate shapes: the golden query itself (AVG), its heavy-tailed
  // SUM and VAR siblings, and the unpredicated weak variants of each.
  struct Candidate {
    std::string name;
    AggQuery query;
  };
  std::vector<Candidate> candidates;
  for (AggFunction fn : {AggFunction::kAvg, AggFunction::kSum, AggFunction::kVar}) {
    AggQuery golden = b.golden_query;
    golden.agg = fn;
    candidates.push_back({StrFormat("golden %s", AggFunctionName(fn)), golden});
    AggQuery weak = golden;
    weak.predicates.clear();
    candidates.push_back({StrFormat("weak   %s", AggFunctionName(fn)), weak});
  }

  const int bins = 16;
  PrintHeader("MI binning — " + b.name + " (feature/label MI by strategy)");
  PrintRow("feature", {"quantile", "equi-width"});
  for (const Candidate& c : candidates) {
    auto feature = ComputeFeatureColumn(c.query, b.training, b.relevant);
    if (!feature.ok()) return 1;
    const auto quantile_bins = DiscretizeQuantile(feature.value(), bins);
    const auto width_bins = Discretize(feature.value(), bins);
    PrintRow(c.name,
             {FormatMetric(DiscreteMutualInformation(quantile_bins, label_bins)),
              FormatMetric(DiscreteMutualInformation(width_bins, label_bins))});
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Section 3: warm-up budget (proxy iterations x top-k).
// ---------------------------------------------------------------------------
int RunWarmupBudget(const BenchConfig& config, const DatasetBundle& b) {
  const int seeds = config.fast ? 1 : 2;
  PrintHeader("Warm-up budget — " + b.name +
              " (best validation metric / model evals)");
  PrintRow("proxy iters \\ top-k", {"k=5", "k=15", "k=30"});
  for (int warmup_iters : {50, 200}) {
    std::vector<std::string> cells;
    for (int top_k : {5, 15, 30}) {
      double metric_sum = 0.0;
      size_t eval_sum = 0;
      for (int s = 0; s < seeds; ++s) {
        auto evaluator =
            MakeEvaluator(b, ModelKind::kLogisticRegression, config.seed);
        if (!evaluator.ok()) return 1;
        FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
        GeneratorOptions gen_options;
        gen_options.warmup_iterations = warmup_iters;
        gen_options.warmup_top_k = top_k;
        gen_options.generation_iterations = config.fast ? 10 : 20;
        gen_options.seed = config.seed + 7 * static_cast<uint64_t>(s);
        SqlQueryGenerator generator(&eval, gen_options);
        auto gen = generator.Run(b.golden_template);
        if (!gen.ok()) return 1;
        metric_sum += gen.value().queries.empty()
                          ? 0.0
                          : gen.value().queries.front().model_metric;
        eval_sum += gen.value().model_evals;
      }
      cells.push_back(StrFormat("%s/%zu",
                                FormatMetric(metric_sum / seeds).c_str(),
                                eval_sum / static_cast<size_t>(seeds)));
    }
    PrintRow(StrFormat("proxy=%d", warmup_iters), cells);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Section 4: QTI beam width x depth — golden-attribute recall vs cost.
// ---------------------------------------------------------------------------
double GoldenRecall(const TemplateIdResult& result, const QueryTemplate& golden) {
  double best = 0.0;
  for (const ScoredTemplate& st : result.templates) {
    size_t hit = 0;
    for (const std::string& attr : golden.where_attrs) {
      for (const std::string& have : st.tmpl.where_attrs) {
        if (have == attr) {
          ++hit;
          break;
        }
      }
    }
    best = std::max(best, static_cast<double>(hit) /
                              static_cast<double>(golden.where_attrs.size()));
  }
  return best;
}

int RunQtiKnobs(const BenchConfig& config, const DatasetBundle& b) {
  PrintHeader("QTI beam x depth — " + b.name +
              " (golden-attr recall / nodes / seconds)");
  PrintRow("beam \\ depth", {"depth=2", "depth=3"});
  QueryTemplate base = b.golden_template;
  base.where_attrs.clear();
  for (int beam : {1, 2, 4}) {
    std::vector<std::string> cells;
    for (int depth : {2, 3}) {
      auto evaluator =
          MakeEvaluator(b, ModelKind::kLogisticRegression, config.seed);
      if (!evaluator.ok()) return 1;
      FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
      TemplateIdOptions qti_options;
      qti_options.beam_width = beam;
      qti_options.max_depth = depth;
      qti_options.n_templates = 8;
      qti_options.node_iterations = config.fast ? 10 : 20;
      qti_options.seed = config.seed;
      TemplateIdentifier identifier(&eval, qti_options);
      WallTimer timer;
      auto result = identifier.Run(base, b.where_candidates);
      if (!result.ok()) return 1;
      cells.push_back(StrFormat(
          "%.2f/%zu/%.2fs", GoldenRecall(result.value(), b.golden_template),
          result.value().nodes_evaluated, timer.Seconds()));
    }
    PrintRow(StrFormat("beam=%d", beam), cells);
  }
  return 0;
}

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty() ? std::vector<std::string>{"tmall", "merchant"}
                              : config.datasets;
  std::printf("Design-choice ablations (DESIGN.md §5)\n");
  std::printf("rows=%zu fast=%d\n", config.rows, config.fast ? 1 : 0);
  for (const std::string& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) {
      std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    const DatasetBundle& b = bundle.value();
    if (RunTpeKnobs(config, b) != 0) return 1;
    if (RunMiBinning(b) != 0) return 1;
    if (RunWarmupBudget(config, b) != 0) return 1;
    if (RunQtiKnobs(config, b) != 0) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

/// \file bench_fig7.cc
/// \brief Reproduces Figure 7: FeatAug runtime split (QTI / Warm-up /
/// Generate) as the relevant table widens (the paper's Student-Wide
/// horizontal duplication, 20..100 columns).
///
/// Expected shape: QTI time grows with the column count (more candidate
/// attributes per layer); warm-up and generate times stay roughly flat.

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression}
          : config.models;
  // Capped at 63 total candidate attributes — TemplateIdentifier's lattice
  // node is a 64-bit mask (the paper's widest real attr set is 20).
  const std::vector<size_t> extra_cols =
      config.fast ? std::vector<size_t>{0, 16, 32}
                  : std::vector<size_t>{0, 12, 24, 36, 48};

  std::printf("Figure 7 reproduction — runtime vs #columns in R (Student-Wide)\n");
  std::printf("rows=%zu%s\n", config.rows, config.fast ? " (fast mode)" : "");

  for (ModelKind model : models) {
    PrintHeader(std::string("Fig. 7 — model ") + ModelKindToString(model));
    PrintRow("cols(R)", {"qti_s", "warmup_s", "generate_s", "total_s"});
    for (size_t extra : extra_cols) {
      SyntheticOptions data_options;
      data_options.n_train = config.rows;
      data_options.avg_logs_per_entity = config.logs_per_entity;
      data_options.seed = config.seed;
      data_options.extra_numeric_cols = extra;
      DatasetBundle bundle = MakeStudent(data_options);
      const MethodBudget budget = MakeBudget(config, model);
      auto cell = RunFeatAug(bundle, model, FeatAugVariant::kFull,
                             ProxyKind::kMutualInformation, budget, config.seed);
      if (!cell.ok()) {
        PrintRow(StrFormat("%zu", bundle.relevant.num_columns()), {"X"});
        continue;
      }
      const CellResult& c = cell.value();
      PrintRow(StrFormat("%zu", bundle.relevant.num_columns()),
               {StrFormat("%.2f", c.qti_seconds),
                StrFormat("%.2f", c.warmup_seconds),
                StrFormat("%.2f", c.generate_seconds),
                StrFormat("%.2f",
                          c.qti_seconds + c.warmup_seconds + c.generate_seconds)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

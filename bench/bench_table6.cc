/// \file bench_table6.cc
/// \brief Reproduces Table VI: single-table / one-to-one relationship
/// datasets (Covtype, Household; macro-F1) across LR, XGB, RF, adding the
/// one-to-one baselines ARDA and AutoFeature (MAB / DQN). DeepFM is omitted
/// as in the paper (multi-class tasks).
///
/// Expected shape: FeatAug competitive or best in most cells; ARDA /
/// AutoFeature strong since the signal attributes are directly joinable.

#include <cstdio>

#include "bench/harness.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty() ? std::vector<std::string>{"covtype", "household"}
                              : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb,
                                   ModelKind::kRandomForest}
          : config.models;
  const std::vector<SelectorKind> selectors = {
      SelectorKind::kNone, SelectorKind::kLr,   SelectorKind::kGbdt,
      SelectorKind::kMi,   SelectorKind::kChi2, SelectorKind::kGini};

  std::printf("Table VI reproduction — single-table / one-to-one datasets\n");
  std::printf("rows=%zu features=%d repeats=%d%s\n", config.rows,
              config.n_features, config.repeats, config.fast ? " (fast mode)" : "");

  for (ModelKind model : models) {
    PrintHeader(std::string("Table VI — downstream model ") +
                ModelKindToString(model));
    std::vector<std::string> header = {"method"};
    std::vector<DatasetBundle> bundles;
    for (const auto& name : datasets) {
      auto bundle = MakeBundle(name, config);
      if (!bundle.ok()) {
        std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                     bundle.status().ToString().c_str());
        return 1;
      }
      header.push_back(name + "(" + MetricNameFor(bundle.value()) + ")");
      bundles.push_back(std::move(bundle).ValueOrDie());
    }
    PrintRow(header[0], {header.begin() + 1, header.end()});

    const MethodBudget budget = MakeBudget(config, model);
    auto run_method = [&](const std::string& label, auto&& fn) {
      std::vector<std::string> cells;
      for (const auto& bundle : bundles) {
        std::vector<double> values;
        bool ok = true;
        for (int r = 0; r < config.repeats; ++r) {
          auto cell = fn(bundle, config.seed + 97 * r);
          if (!cell.ok()) {
            ok = false;
            break;
          }
          values.push_back(cell.value().metric);
        }
        cells.push_back(ok ? FormatMetric(MeanMetric(values)) : "-");
      }
      PrintRow(label, cells);
    };

    for (SelectorKind selector : selectors) {
      run_method(SelectorKindToString(selector),
                 [&](const DatasetBundle& bundle, uint64_t seed) {
                   return RunFeaturetools(bundle, model, selector, budget,
                                          config.n_features, seed);
                 });
    }
    run_method("ARDA", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunArda(bundle, model, config.n_features, seed);
    });
    run_method("AutoFeat-MAB", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunAutoFeature(bundle, model, AutoFeaturePolicy::kMab,
                            config.n_features, budget, seed);
    });
    run_method("AutoFeat-DQN", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunAutoFeature(bundle, model, AutoFeaturePolicy::kDqn,
                            config.n_features, budget, seed);
    });
    run_method("Random", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunRandom(bundle, model, budget, config.n_features, seed);
    });
    run_method("FeatAug", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunFeatAug(bundle, model, FeatAugVariant::kFull,
                        ProxyKind::kMutualInformation, budget, seed);
    });
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

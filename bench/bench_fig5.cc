/// \file bench_fig5.cc
/// \brief Reproduces Figure 5: the effect of the Query Template
/// Identification optimizations.
///
///  (a) QTI wall-clock per dataset for three configurations:
///      - no opts    : real model evaluations, no predictor (the paper's
///                     variant that cannot finish in 6h at full scale);
///      - Opt1 only  : low-cost proxy scoring, all children evaluated;
///      - Opt1+Opt2  : proxy scoring + performance-predictor pruning.
///  (b-e) downstream quality of FeatAug under each QTI configuration.
///
/// Expected shape: time(no opts) >> time(Opt1) > time(Opt1+2); quality is
/// barely affected by Opt2 ("hurts little performance").

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/template_id.h"

namespace featlib {
namespace bench {
namespace {

struct QtiVariant {
  const char* label;
  bool use_proxy;
  bool use_predictor;
};

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb}
          : config.models;
  const std::vector<QtiVariant> variants = {
      {"QTI w/o Opt1,2", false, false},
      {"QTI w/o Opt2", true, false},
      {"QTI all opts", true, true}};

  std::printf("Figure 5 reproduction — QTI optimization ablation\n");
  std::printf("rows=%zu repeats=%d%s\n", config.rows, config.repeats,
              config.fast ? " (fast mode)" : "");

  // --- (a) QTI wall-clock time per variant and dataset. ---
  PrintHeader("Fig. 5(a) — QTI time (seconds)");
  {
    std::vector<std::string> header = datasets;
    PrintRow("variant", header);
    for (const QtiVariant& variant : variants) {
      std::vector<std::string> cells;
      for (const auto& name : datasets) {
        auto bundle = MakeBundle(name, config);
        if (!bundle.ok()) return 1;
        auto evaluator = MakeEvaluator(bundle.value(),
                                       ModelKind::kLogisticRegression, config.seed);
        if (!evaluator.ok()) return 1;
        FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
        const MethodBudget budget =
            MakeBudget(config, ModelKind::kLogisticRegression);
        TemplateIdOptions options;
        options.use_low_cost_proxy = variant.use_proxy;
        options.use_predictor = variant.use_predictor;
        options.node_iterations = budget.qti_node_iterations;
        options.beam_width = budget.qti_beam_width;
        options.max_depth = budget.qti_max_depth;
        options.n_templates = budget.n_templates;
        options.seed = config.seed;
        QueryTemplate base;
        base.agg_functions = bundle.value().agg_functions;
        base.agg_attrs = bundle.value().agg_attrs;
        base.fk_attrs = bundle.value().fk_attrs;
        TemplateIdentifier identifier(&eval, options);
        WallTimer timer;
        auto result = identifier.Run(base, bundle.value().where_candidates);
        if (!result.ok()) {
          cells.push_back("X");
          continue;
        }
        cells.push_back(StrFormat("%.2fs", timer.Seconds()));
      }
      PrintRow(variant.label, cells);
    }
  }

  // --- (b-e) downstream quality under each QTI configuration. ---
  for (const auto& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) return 1;
    const DatasetBundle& b = bundle.value();
    PrintHeader("Fig. 5(b-e) — quality on " + name + " (" + MetricNameFor(b) + ")");
    std::vector<std::string> header;
    for (ModelKind model : models) header.push_back(ModelKindToString(model));
    PrintRow("variant", header);
    for (const QtiVariant& variant : variants) {
      std::vector<std::string> cells;
      for (ModelKind model : models) {
        MethodBudget budget = MakeBudget(config, model);
        // Patch the QTI flags through FeatAugOptions by running the pieces
        // manually: identification, then generation per template.
        FeatAugOptions options;
        options.n_templates = budget.n_templates;
        options.queries_per_template = budget.queries_per_template;
        options.generator.warmup_iterations = budget.warmup_iterations;
        options.generator.warmup_top_k = budget.warmup_top_k;
        options.generator.generation_iterations = budget.generation_iterations;
        options.qti.node_iterations = budget.qti_node_iterations;
        options.qti.beam_width = budget.qti_beam_width;
        options.qti.max_depth = budget.qti_max_depth;
        options.qti.use_low_cost_proxy = variant.use_proxy;
        options.qti.use_predictor = variant.use_predictor;
        options.evaluator.model = model;
        options.evaluator.metric = DefaultMetricFor(b.task);
        options.seed = config.seed;
        FeatAug feataug(b.ToProblem(), options);
        auto plan = feataug.Fit();
        if (!plan.ok()) {
          cells.push_back("X");
          continue;
        }
        auto score = feataug.evaluator()->TestScore(plan.value().queries);
        cells.push_back(score.ok() ? FormatMetric(score.value()) : "X");
      }
      PrintRow(variant.label, cells);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

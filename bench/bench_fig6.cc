/// \file bench_fig6.cc
/// \brief Reproduces Figure 6: downstream metric as the number of query
/// templates grows from 1 to 8 (5 queries per template), per dataset and
/// model.
///
/// Expected shape: mostly non-decreasing curves; deep models benefit most
/// from additional templates (they synthesize feature interactions), while
/// traditional models plateau early.

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb}
          : config.models;
  const std::vector<int> template_counts =
      config.fast ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 6, 8};

  std::printf("Figure 6 reproduction — metric vs number of query templates\n");
  std::printf("rows=%zu repeats=%d%s\n", config.rows, config.repeats,
              config.fast ? " (fast mode)" : "");

  for (const auto& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) {
      std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    const DatasetBundle& b = bundle.value();
    PrintHeader("Fig. 6 — " + name + " (" + MetricNameFor(b) + ")");
    std::vector<std::string> header;
    for (int n : template_counts) header.push_back(StrFormat("T=%d", n));
    PrintRow("model", header);
    for (ModelKind model : models) {
      std::vector<std::string> cells;
      for (int n_templates : template_counts) {
        MethodBudget budget = MakeBudget(config, model);
        budget.n_templates = n_templates;
        std::vector<double> values;
        bool ok = true;
        for (int r = 0; r < config.repeats; ++r) {
          auto cell = RunFeatAug(b, model, FeatAugVariant::kFull,
                                 ProxyKind::kMutualInformation, budget,
                                 config.seed + 97 * r);
          if (!cell.ok()) {
            ok = false;
            break;
          }
          values.push_back(cell.value().metric);
        }
        cells.push_back(ok ? FormatMetric(MeanMetric(values)) : "X");
      }
      PrintRow(ModelKindToString(model), cells);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

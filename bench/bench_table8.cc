/// \file bench_table8.cc
/// \brief Reproduces Table VIII: sensitivity of FeatAug to the low-cost
/// proxy — Spearman correlation (SC), mutual information (MI) and a mini
/// logistic/linear-regression model (LR) — across datasets and models.
///
/// Expected shape: MI best in the majority of cells, SC competitive, LR
/// proxy weakest (its performance transfers poorly to other model classes).

#include <cstdio>

#include "bench/harness.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb,
                                   ModelKind::kRandomForest, ModelKind::kDeepFm}
          : config.models;
  const std::vector<std::pair<ProxyKind, const char*>> proxies = {
      {ProxyKind::kSpearman, "SC"},
      {ProxyKind::kMutualInformation, "MI"},
      {ProxyKind::kLogisticRegression, "LR"}};

  std::printf("Table VIII reproduction — low-cost proxy sweep\n");
  std::printf("rows=%zu features=%d repeats=%d%s\n", config.rows,
              config.n_features, config.repeats, config.fast ? " (fast mode)" : "");

  for (const auto& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) {
      std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    const DatasetBundle& b = bundle.value();
    PrintHeader("Table VIII — dataset " + name + " (" + MetricNameFor(b) + ")");
    std::vector<std::string> header;
    for (ModelKind model : models) header.push_back(ModelKindToString(model));
    PrintRow("proxy", header);
    for (const auto& [proxy, label] : proxies) {
      std::vector<std::string> cells;
      for (ModelKind model : models) {
        const MethodBudget budget = MakeBudget(config, model);
        std::vector<double> values;
        bool ok = true;
        for (int r = 0; r < config.repeats; ++r) {
          auto cell = RunFeatAug(b, model, FeatAugVariant::kFull, proxy, budget,
                                 config.seed + 97 * r);
          if (!cell.ok()) {
            ok = false;
            break;
          }
          values.push_back(cell.value().metric);
        }
        cells.push_back(ok ? FormatMetric(MeanMetric(values)) : "-");
      }
      PrintRow(label, cells);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

/// \file bench_fig9.cc
/// \brief Reproduces Figure 9: FeatAug runtime split (QTI / Warm-up /
/// Generate) as the relevant table R grows (log-volume sweep; |D| fixed).
///
/// Expected shape: QTI and warm-up times grow roughly linearly with |R|
/// (every query execution scans R); generate time tracks model training and
/// moves little.

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty() ? std::vector<std::string>{"student", "merchant"}
                              : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression}
          : config.models;
  const std::vector<double> scales =
      config.fast ? std::vector<double>{0.5, 1.0}
                  : std::vector<double>{0.5, 1.0, 2.0, 3.0, 4.0};

  std::printf("Figure 9 reproduction — runtime vs #rows in relevant table R\n");
  std::printf("rows(D)=%zu base logs=%.0f%s\n", config.rows,
              config.logs_per_entity, config.fast ? " (fast mode)" : "");

  for (const auto& name : datasets) {
    for (ModelKind model : models) {
      PrintHeader("Fig. 9 — " + name + ", model " + ModelKindToString(model));
      PrintRow("rows(R)", {"qti_s", "warmup_s", "generate_s", "total_s"});
      for (double scale : scales) {
        BenchConfig scaled = config;
        scaled.logs_per_entity = config.logs_per_entity * scale;
        auto bundle = MakeBundle(name, scaled);
        if (!bundle.ok()) return 1;
        const MethodBudget budget = MakeBudget(config, model);
        auto cell = RunFeatAug(bundle.value(), model, FeatAugVariant::kFull,
                               ProxyKind::kMutualInformation, budget, config.seed);
        if (!cell.ok()) {
          PrintRow("?", {"X"});
          continue;
        }
        const CellResult& c = cell.value();
        PrintRow(StrFormat("%zu", bundle.value().relevant.num_rows()),
                 {StrFormat("%.2f", c.qti_seconds),
                  StrFormat("%.2f", c.warmup_seconds),
                  StrFormat("%.2f", c.generate_seconds),
                  StrFormat("%.2f", c.qti_seconds + c.warmup_seconds +
                                        c.generate_seconds)});
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

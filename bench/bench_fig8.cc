/// \file bench_fig8.cc
/// \brief Reproduces Figure 8: FeatAug runtime split (QTI / Warm-up /
/// Generate) as the training table D grows (row-count sweep per dataset).
///
/// Expected shape: warm-up time grows roughly linearly with |D| (the MI
/// proxy touches every training row); generate time grows with model
/// training cost (super-linear for the heavier models).

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression}
          : config.models;
  const std::vector<double> scales =
      config.fast ? std::vector<double>{0.5, 1.0}
                  : std::vector<double>{0.4, 0.8, 1.2, 1.6, 2.0};

  std::printf("Figure 8 reproduction — runtime vs #rows in training table D\n");
  std::printf("base rows=%zu%s\n", config.rows, config.fast ? " (fast mode)" : "");

  for (const auto& name : datasets) {
    for (ModelKind model : models) {
      PrintHeader("Fig. 8 — " + name + ", model " + ModelKindToString(model));
      PrintRow("rows(D)", {"qti_s", "warmup_s", "generate_s", "total_s"});
      for (double scale : scales) {
        BenchConfig scaled = config;
        scaled.rows = static_cast<size_t>(static_cast<double>(config.rows) * scale);
        auto bundle = MakeBundle(name, scaled);
        if (!bundle.ok()) return 1;
        const MethodBudget budget = MakeBudget(config, model);
        auto cell = RunFeatAug(bundle.value(), model, FeatAugVariant::kFull,
                               ProxyKind::kMutualInformation, budget, config.seed);
        if (!cell.ok()) {
          PrintRow(StrFormat("%zu", scaled.rows), {"X"});
          continue;
        }
        const CellResult& c = cell.value();
        PrintRow(StrFormat("%zu", scaled.rows),
                 {StrFormat("%.2f", c.qti_seconds),
                  StrFormat("%.2f", c.warmup_seconds),
                  StrFormat("%.2f", c.generate_seconds),
                  StrFormat("%.2f", c.qti_seconds + c.warmup_seconds +
                                        c.generate_seconds)});
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

#pragma once

/// \file harness.h
/// \brief Shared infrastructure for the paper-reproduction benchmarks: one
/// function per method (FeatAug variants, Featuretools+selectors, Random,
/// ARDA, AutoFeature), scenario runners and table printers.
///
/// Scale note: the paper's datasets hold 1.6M-7.8M relevant rows and the
/// experiments ran hours on a 32-vCPU EC2 box. These harnesses default to
/// laptop-scale synthetic data (see DESIGN.md §2) so a full sweep finishes
/// in minutes; pass --rows/--logs/--repeats to scale up. Absolute numbers
/// differ from the paper; orderings and curve shapes are the reproduction
/// target (EXPERIMENTS.md records both).

#include <string>
#include <utility>
#include <vector>

#include "baselines/arda.h"
#include "baselines/augmenters.h"
#include "baselines/autofeature.h"
#include "baselines/featuretools.h"
#include "baselines/random_aug.h"
#include "baselines/selectors.h"
#include "core/augmenter.h"
#include "core/feataug.h"
#include "data/synthetic.h"

namespace featlib {
namespace bench {

/// Command-line configuration shared by all bench binaries.
struct BenchConfig {
  size_t rows = 1500;
  double logs_per_entity = 10.0;
  int repeats = 1;
  bool fast = false;
  uint64_t seed = 42;
  std::vector<std::string> datasets;   // bench-specific default when empty
  std::vector<ModelKind> models;       // likewise
  /// Features generated per method (paper: 40 = 8 templates x 5 queries).
  /// Defaults to 20 (4 x 5) to keep the default sweep in minutes.
  int n_features = 20;
};

/// Parses --rows= --logs= --repeats= --seed= --features= --fast
/// --datasets=a,b --models=LR,XGB; returns false (after printing usage) on
/// unknown flags or --help.
bool ParseBenchArgs(int argc, char** argv, BenchConfig* config);

/// Search budgets derived from the config (fast mode shrinks everything).
struct MethodBudget {
  int n_templates = 4;
  int queries_per_template = 5;
  int warmup_iterations = 100;
  int warmup_top_k = 12;
  int generation_iterations = 25;
  int qti_node_iterations = 20;
  int qti_beam_width = 2;
  int qti_max_depth = 3;
  SelectorBudget selector;
  int autofeature_budget = 25;
};

MethodBudget MakeBudget(const BenchConfig& config, ModelKind model);

/// FeatAug ablation variants (Table VII).
enum class FeatAugVariant { kFull, kNoWarmup, kNoQti };

/// Result of one (dataset, model, method) cell.
struct CellResult {
  double metric = 0.0;
  double qti_seconds = 0.0;
  double warmup_seconds = 0.0;
  double generate_seconds = 0.0;
  size_t n_features = 0;
  /// Candidates the search skipped-and-recorded instead of failing the fit
  /// (partial-failure isolation). Non-zero counts are reported loudly by
  /// RunAugmenterCell — a bench comparing methods on a cell where one
  /// silently lost candidates would be comparing different search spaces.
  size_t failed_candidates = 0;
};

/// Builds the evaluator for a bundle/model (0.6/0.2/0.2 split as in §VII).
Result<FeatureEvaluator> MakeEvaluator(const DatasetBundle& bundle,
                                       ModelKind model, uint64_t seed);

/// Evaluator options for a bundle/model (what MakeEvaluator passes through;
/// the Augmenter adapters take these and build their own evaluator).
EvaluatorOptions MakeEvaluatorOptions(const DatasetBundle& bundle,
                                      ModelKind model, uint64_t seed);

/// Shared cell runner: fits through the unified Augmenter interface and
/// scores the fitted query set on the held-out test split. Every Run*
/// method below is a thin wrapper building the right adapter.
Result<CellResult> RunAugmenterCell(Augmenter* augmenter);

/// Runs FeatAug and reports the held-out test metric plus phase timings.
Result<CellResult> RunFeatAug(const DatasetBundle& bundle, ModelKind model,
                              FeatAugVariant variant, ProxyKind proxy,
                              const MethodBudget& budget, uint64_t seed);

/// Runs Featuretools (+ optional selector) with the same feature budget.
Result<CellResult> RunFeaturetools(const DatasetBundle& bundle, ModelKind model,
                                   SelectorKind selector, const MethodBudget& budget,
                                   int n_features, uint64_t seed);

/// The Random baseline: random templates + random queries, no search.
Result<CellResult> RunRandom(const DatasetBundle& bundle, ModelKind model,
                             const MethodBudget& budget, int n_features,
                             uint64_t seed);

/// ARDA over the one-to-one identity feature candidates.
Result<CellResult> RunArda(const DatasetBundle& bundle, ModelKind model,
                           int n_features, uint64_t seed);

/// AutoFeature (MAB or DQN) over the same candidates.
Result<CellResult> RunAutoFeature(const DatasetBundle& bundle, ModelKind model,
                                  AutoFeaturePolicy policy, int n_features,
                                  const MethodBudget& budget, uint64_t seed);

/// Mean metric across `repeats` runs with distinct seeds (±repeats, §VII.A).
double MeanMetric(const std::vector<double>& values);

/// \name Table rendering helpers
/// @{
void PrintHeader(const std::string& title);
void PrintRow(const std::string& label, const std::vector<std::string>& cells);
std::string FormatMetric(double value);
/// @}

/// Parses a model name ("LR", "XGB", "RF", "DeepFM").
Result<ModelKind> ParseModelKind(const std::string& name);

/// Default metric name for a bundle ("AUC", "F1", "RMSE").
const char* MetricNameFor(const DatasetBundle& bundle);

/// Builds a dataset bundle for the config.
Result<DatasetBundle> MakeBundle(const std::string& name, const BenchConfig& config,
                                 uint64_t seed_offset = 0);

/// \brief Minimal flat JSON record for machine-readable bench output
/// (speedup records like BENCH_executor.json; no nesting, no escapes beyond
/// quotes/backslashes).
class JsonRecord {
 public:
  JsonRecord& Add(const std::string& key, double value);
  JsonRecord& Add(const std::string& key, const std::string& value);
  JsonRecord& Add(const std::string& key, bool value);

  /// One-line JSON object, fields in insertion order.
  std::string ToString() const;

  /// Writes ToString() plus a trailing newline; overwrites `path`.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> rendered
};

}  // namespace bench
}  // namespace featlib

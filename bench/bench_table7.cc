/// \file bench_table7.cc
/// \brief Reproduces Table VII: ablation of FeatAug's two optimizations —
/// NoQTI (single user-provided template instead of Query Template
/// Identification) and NoWU (plain TPE with the warm-up's model-evaluation
/// budget folded in, per §VII.D.1) — against the full system.
///
/// Expected shape: Full >= NoWU >> NoQTI on most cells (QTI contributes the
/// most; warm-up adds a smaller consistent gain).

#include <cstdio>

#include "bench/harness.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb,
                                   ModelKind::kRandomForest, ModelKind::kDeepFm}
          : config.models;
  const std::vector<std::pair<FeatAugVariant, const char*>> variants = {
      {FeatAugVariant::kNoQti, "FeatAug(NoQTI)"},
      {FeatAugVariant::kNoWarmup, "FeatAug(NoWU)"},
      {FeatAugVariant::kFull, "FeatAug(Full)"}};

  std::printf("Table VII reproduction — ablation study\n");
  std::printf("rows=%zu features=%d repeats=%d%s\n", config.rows,
              config.n_features, config.repeats, config.fast ? " (fast mode)" : "");

  for (ModelKind model : models) {
    PrintHeader(std::string("Table VII — downstream model ") +
                ModelKindToString(model));
    std::vector<std::string> header = {"variant"};
    std::vector<DatasetBundle> bundles;
    for (const auto& name : datasets) {
      auto bundle = MakeBundle(name, config);
      if (!bundle.ok()) {
        std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                     bundle.status().ToString().c_str());
        return 1;
      }
      header.push_back(name + "(" + MetricNameFor(bundle.value()) + ")");
      bundles.push_back(std::move(bundle).ValueOrDie());
    }
    PrintRow(header[0], {header.begin() + 1, header.end()});

    const MethodBudget budget = MakeBudget(config, model);
    for (const auto& [variant, label] : variants) {
      std::vector<std::string> cells;
      for (const auto& bundle : bundles) {
        std::vector<double> values;
        bool ok = true;
        for (int r = 0; r < config.repeats; ++r) {
          auto cell = RunFeatAug(bundle, model, variant,
                                 ProxyKind::kMutualInformation, budget,
                                 config.seed + 97 * r);
          if (!cell.ok()) {
            ok = false;
            break;
          }
          values.push_back(cell.value().metric);
        }
        cells.push_back(ok ? FormatMetric(MeanMetric(values)) : "-");
      }
      PrintRow(label, cells);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

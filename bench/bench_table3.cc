/// \file bench_table3.cc
/// \brief Reproduces Table III: overall performance on the four one-to-many
/// datasets (Tmall, Instacart, Student AUC; Merchant RMSE) across LR, XGB,
/// RF and DeepFM, for Featuretools (+7 selectors), Random and FeatAug.
///
/// Expected shape (paper): FeatAug tops most (dataset, model) cells;
/// Featuretools variants cluster below because their query space has no
/// predicates and the planted signal is predicate-gated.

#include <cstdio>

#include "bench/harness.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty()
          ? std::vector<std::string>{"tmall", "instacart", "student", "merchant"}
          : config.datasets;
  const std::vector<ModelKind> models =
      config.models.empty()
          ? std::vector<ModelKind>{ModelKind::kLogisticRegression, ModelKind::kXgb,
                                   ModelKind::kRandomForest, ModelKind::kDeepFm}
          : config.models;
  const std::vector<SelectorKind> selectors = {
      SelectorKind::kNone,    SelectorKind::kLr,   SelectorKind::kGbdt,
      SelectorKind::kMi,      SelectorKind::kChi2, SelectorKind::kGini,
      SelectorKind::kForward, SelectorKind::kBackward};

  std::printf("Table III reproduction — one-to-many datasets\n");
  std::printf("rows=%zu logs=%.0f features=%d repeats=%d%s\n", config.rows,
              config.logs_per_entity, config.n_features, config.repeats,
              config.fast ? " (fast mode)" : "");

  for (ModelKind model : models) {
    PrintHeader(std::string("Table III — downstream model ") +
                ModelKindToString(model));
    std::vector<std::string> header = {"method"};
    std::vector<DatasetBundle> bundles;
    for (const auto& name : datasets) {
      auto bundle = MakeBundle(name, config);
      if (!bundle.ok()) {
        std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                     bundle.status().ToString().c_str());
        return 1;
      }
      header.push_back(name + "(" + MetricNameFor(bundle.value()) + ")");
      bundles.push_back(std::move(bundle).ValueOrDie());
    }
    PrintRow(header[0], {header.begin() + 1, header.end()});

    const MethodBudget budget = MakeBudget(config, model);
    auto run_method = [&](const std::string& label, auto&& fn) {
      std::vector<std::string> cells;
      for (const auto& bundle : bundles) {
        std::vector<double> values;
        bool supported = true;
        for (int r = 0; r < config.repeats; ++r) {
          auto cell = fn(bundle, config.seed + 97 * r);
          if (!cell.ok()) {
            supported = false;
            break;
          }
          values.push_back(cell.value().metric);
        }
        cells.push_back(supported ? FormatMetric(MeanMetric(values)) : "-");
      }
      PrintRow(label, cells);
    };

    for (SelectorKind selector : selectors) {
      run_method(SelectorKindToString(selector),
                 [&](const DatasetBundle& bundle, uint64_t seed) {
                   return RunFeaturetools(bundle, model, selector, budget,
                                          config.n_features, seed);
                 });
    }
    run_method("Random", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunRandom(bundle, model, budget, config.n_features, seed);
    });
    run_method("FeatAug", [&](const DatasetBundle& bundle, uint64_t seed) {
      return RunFeatAug(bundle, model, FeatAugVariant::kFull,
                        ProxyKind::kMutualInformation, budget, seed);
    });
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

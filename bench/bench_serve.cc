/// \file bench_serve.cc
/// \brief Serving-daemon benchmark: end-to-end request latency and
/// throughput through the socket front-end (framing + registry + coalescing
/// batcher) against a live in-process daemon, with byte-identity verified
/// against direct TransformMany on the same fitted plan.
///
///   bench_serve [--clients=4] [--requests=50] [--rows=400] [--batch-rows=30]
///               [--max-delay-us=500] [--out=BENCH_executor.json]
///
/// Appends/replaces the serve_* fields of the flat one-line JSON record at
/// --out (default: BENCH_executor.json in the cwd — scripts/ci.sh points it
/// at the repo root copy bench_micro wrote, and asserts the fields):
///
///   serve_p50_seconds        median end-to-end request latency
///   serve_p99_seconds        99th-percentile end-to-end request latency
///   serve_throughput_rps     completed requests / wall seconds
///   serve_bit_identical      every response byte-identical to in-process
///   serve_coalesced_flushes  flushes that merged >= 2 requests
///
/// Exits non-zero when any response differs from the in-process reference.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/plan_io.h"
#include "harness.h"
#include "serve/client.h"
#include "serve/plan_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "table/csv.h"

namespace featlib {
namespace {

struct ServeBenchConfig {
  int clients = 4;
  int requests_per_client = 50;
  size_t relevant_rows = 400;
  size_t batch_rows = 30;
  long long max_delay_us = 500;
  std::string out_path = "BENCH_executor.json";
};

bool Parse(int argc, char** argv, ServeBenchConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--clients=")) config->clients = std::atoi(v);
    else if (const char* v = value_of("--requests=")) config->requests_per_client = std::atoi(v);
    else if (const char* v = value_of("--rows=")) config->relevant_rows = std::atoll(v);
    else if (const char* v = value_of("--batch-rows=")) config->batch_rows = std::atoll(v);
    else if (const char* v = value_of("--max-delay-us=")) config->max_delay_us = std::atoll(v);
    else if (const char* v = value_of("--out=")) config->out_path = v;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return config->clients > 0 && config->requests_per_client > 0;
}

// The serving fixture: a one-to-many relevant table and a query set
// spanning the kernel families, shipped as the daemon's on-disk pair.
Table MakeRelevant(size_t rows) {
  Table relevant;
  Rng rng(29);
  const char* depts[] = {"x", "y", "z"};
  Column k(DataType::kInt64), v(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (size_t i = 0; i < rows; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(20)));
    if (rng.Bernoulli(0.15)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(5)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  FEAT_CHECK(relevant.AddColumn("k", std::move(k)).ok(), "fixture");
  FEAT_CHECK(relevant.AddColumn("v", std::move(v)).ok(), "fixture");
  FEAT_CHECK(relevant.AddColumn("level", std::move(level)).ok(), "fixture");
  FEAT_CHECK(relevant.AddColumn("dept", std::move(dept)).ok(), "fixture");
  return relevant;
}

Table MakeBatch(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table batch;
  Column k(DataType::kInt64), age(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(24)));
    age.AppendDouble(20.0 + static_cast<double>(rng.UniformInt(40)));
  }
  FEAT_CHECK(batch.AddColumn("k", std::move(k)).ok(), "fixture");
  FEAT_CHECK(batch.AddColumn("age", std::move(age)).ok(), "fixture");
  return batch;
}

AugmentationPlan MakePlan() {
  auto query = [](AggFunction fn, std::string attr,
                  std::vector<Predicate> preds) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = std::move(attr);
    q.group_keys = {"k"};
    q.predicates = std::move(preds);
    return q;
  };
  const Predicate dept_x = Predicate::Equals("dept", Value::Str("x"));
  const Predicate lvl = Predicate::Range("level", 1.0, 3.0);
  AugmentationPlan plan;
  plan.queries.push_back(query(AggFunction::kAvg, "v", {}));
  plan.queries.push_back(query(AggFunction::kSum, "v", {dept_x}));
  plan.queries.push_back(query(AggFunction::kMax, "v", {dept_x, lvl}));
  plan.queries.push_back(query(AggFunction::kCount, "", {lvl}));
  plan.queries.push_back(query(AggFunction::kMedian, "v", {dept_x}));
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    plan.feature_names.push_back("f" + std::to_string(i));
    plan.valid_metrics.push_back(0.5);
  }
  return plan;
}

/// Merges `record`'s fields into the flat one-line JSON at `path`,
/// replacing any existing serve_* fields and preserving everything else
/// (bench_micro's record). The split is quote-aware: values like
/// "threads": "1,2,4,8" contain top-level-looking commas.
Status MergeRecordInto(const std::string& path,
                       const bench::JsonRecord& record) {
  std::vector<std::string> kept;
  std::ifstream in(path);
  if (in.good()) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    // Trim whitespace and the outer braces.
    const size_t open = text.find('{');
    const size_t close = text.rfind('}');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::DataLoss(path + " is not a flat JSON object");
    }
    text = text.substr(open + 1, close - open - 1);
    std::string field;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        field.push_back(c);
        if (c == '\\' && i + 1 < text.size()) {
          field.push_back(text[++i]);
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
        field.push_back(c);
      } else if (c == ',') {
        if (!field.empty()) kept.push_back(field);
        field.clear();
      } else if (!(field.empty() &&
                   (c == ' ' || c == '\n' || c == '\t' || c == '\r'))) {
        field.push_back(c);
      }
    }
    if (!field.empty()) kept.push_back(field);
    // Drop stale serve_* fields (ours to replace) and empty tokens.
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [](const std::string& f) {
                                const size_t q = f.find('"');
                                return q == std::string::npos ||
                                       f.compare(q, 7, "\"serve_") == 0;
                              }),
               kept.end());
  }
  const std::string fresh = record.ToString();  // {"serve_...": ...}
  std::string merged = "{";
  for (const std::string& f : kept) {
    merged += f;
    merged += ", ";
  }
  merged += fresh.substr(1);  // drop the record's opening brace
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot write " + path);
  out << merged << "\n";
  return Status::OK();
}

int Run(const ServeBenchConfig& config) {
  // --- Fixture: plan pair on disk, daemon over a unix socket. ---
  std::string dir_template = "/tmp/feataug_bench_serve_XXXXXX";
  std::vector<char> dir_buf(dir_template.begin(), dir_template.end());
  dir_buf.push_back('\0');
  if (::mkdtemp(dir_buf.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_buf.data();
  const Table relevant = MakeRelevant(config.relevant_rows);
  FEAT_CHECK(WriteCsv(relevant, dir + "/bench.relevant.csv").ok(),
             "fixture write");
  FEAT_CHECK(WriteAugmentationPlan(MakePlan(), "relevant", relevant,
                                   dir + "/bench.sql")
                 .ok(),
             "fixture write");
  auto reread = ReadCsv(dir + "/bench.relevant.csv");
  FEAT_CHECK(reread.ok(), "fixture reread");

  serve::PlanRegistry registry;
  Status st = registry.DiscoverPlans(dir);
  FEAT_CHECK(st.ok(), "discover");

  serve::ServerOptions options;
  options.unix_socket_path = dir + "/daemon.sock";
  options.batcher.max_delay_us = config.max_delay_us;
  serve::Server server(&registry, options);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  // Warm the plan so the measured window is steady-state serving.
  FEAT_CHECK(registry.Acquire("bench").ok(), "warm");

  // --- In-process reference for byte-identity. ---
  std::vector<Table> batches;
  for (int b = 0; b < 8; ++b) {
    batches.push_back(MakeBatch(config.batch_rows, 100 + b));
  }
  auto direct = LoadFittedAugmenter(dir + "/bench.sql", reread.value());
  FEAT_CHECK(direct.ok(), "reference load");
  auto many = direct.value()->TransformMany(batches);
  FEAT_CHECK(many.ok(), "reference transform");
  std::vector<std::string> reference;
  for (const Table& table : many.value()) {
    reference.push_back(serve::EncodeTable(table));
  }

  // --- Closed-loop load: one connection per client thread. ---
  const int total_requests = config.clients * config.requests_per_client;
  std::vector<std::vector<double>> latencies(config.clients);
  std::vector<int> mismatches(config.clients, 0);
  std::vector<int> errors(config.clients, 0);
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::ServeClient::ConnectUnix(options.unix_socket_path);
      if (!client.ok()) {
        errors[c] = config.requests_per_client;
        return;
      }
      latencies[c].reserve(config.requests_per_client);
      for (int r = 0; r < config.requests_per_client; ++r) {
        const size_t b = (c + r) % batches.size();
        WallTimer timer;
        auto out = client.value().Transform("bench", batches[b]);
        const double seconds = timer.Seconds();
        if (!out.ok()) {
          ++errors[c];
          continue;
        }
        latencies[c].push_back(seconds);
        if (serve::EncodeTable(out.value()) != reference[b]) ++mismatches[c];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds = wall.Seconds();
  server.Shutdown();

  std::vector<double> all;
  int total_errors = 0;
  int total_mismatches = 0;
  for (int c = 0; c < config.clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    total_errors += errors[c];
    total_mismatches += mismatches[c];
  }
  if (all.empty()) {
    std::fprintf(stderr, "no request completed\n");
    return 1;
  }
  std::sort(all.begin(), all.end());
  auto percentile = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(all.size() - 1));
    return all[idx];
  };
  const double p50 = percentile(0.50);
  const double p99 = percentile(0.99);
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(all.size()) / wall_seconds : 0.0;
  const bool bit_identical = total_mismatches == 0 && total_errors == 0;

  bench::JsonRecord record;
  record.Add("serve_clients", static_cast<double>(config.clients))
      .Add("serve_requests", static_cast<double>(total_requests))
      .Add("serve_p50_seconds", p50)
      .Add("serve_p99_seconds", p99)
      .Add("serve_throughput_rps", throughput)
      .Add("serve_coalesced_flushes",
           static_cast<double>(server.batcher().num_coalesced_flushes()))
      .Add("serve_max_flush_size",
           static_cast<double>(server.batcher().max_flush_size()))
      .Add("serve_bit_identical", bit_identical);
  st = MergeRecordInto(config.out_path, record);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "bench_serve: %d clients x %d requests, p50 %.6fs p99 %.6fs "
      "%.0f req/s, %zu coalesced flush(es), bit_identical=%s -> %s\n",
      config.clients, config.requests_per_client, p50, p99, throughput,
      server.batcher().num_coalesced_flushes(),
      bit_identical ? "true" : "false", config.out_path.c_str());
  return bit_identical ? 0 : 1;
}

}  // namespace
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::ServeBenchConfig config;
  if (!featlib::Parse(argc, argv, &config)) return 2;
  return featlib::Run(config);
}

/// \file bench_multi_table.cc
/// \brief Extension bench for the §III reductions: the "multiple relevant
/// tables" scenario and the deep-layer flatten, on the normalized
/// Instacart-style schema of data/multi_table_data.h.
///
/// Section 1 — budget allocation across two fact tables at a fixed total
/// feature budget: order_items only, browse_log only, both with an equal
/// split, both proxy-weighted. Expected shape: the facts carry
/// complementary signals (the predicate-gated price signal vs the
/// browse-count signal), so both-table runs track or beat the better
/// single table and hedge against committing to the wrong one;
/// order_items-only is high-variance because everything hinges on one
/// compound-predicate discovery. Proxy weighting is at or above the equal
/// split.
///
/// Section 2 — deep-layer necessity: FeatAug on the *raw* order_items fact
/// (no dimension columns) vs the flattened chain. Expected shape: the
/// flattened run wins decisively, because the golden predicate needs the
/// `department` attribute that only exists two lookups away.

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"
#include "core/multi_table.h"
#include "data/multi_table_data.h"
#include "ml/evaluator.h"
#include "query/executor.h"

namespace featlib {
namespace bench {
namespace {

/// Held-out test metric of base + plan features, 0.6/0.2/0.2 split.
Result<double> TestMetric(const Table& augmented, const std::string& label_col,
                          uint64_t seed) {
  std::vector<std::string> feature_cols;
  for (size_t c = 0; c < augmented.num_columns(); ++c) {
    const std::string& name = augmented.NameAt(c);
    if (name == label_col || name == "user_id") continue;
    feature_cols.push_back(name);
  }
  FEAT_ASSIGN_OR_RETURN(Dataset ds,
                        Dataset::FromTable(augmented, label_col, feature_cols,
                                           TaskKind::kBinaryClassification));
  const SplitIndices split = MakeSplit(augmented.num_rows(), 0.6, 0.2, 7);
  return TrainAndScore(ModelKind::kLogisticRegression, ds.GatherRows(split.train),
                       ds.GatherRows(split.test), MetricKind::kAuc, seed);
}

MultiTableOptions MakeOptions(const BenchConfig& config, int total_features) {
  MultiTableOptions options;
  options.total_features = total_features;
  options.queries_per_template = 4;
  // Paper-like search budgets (§V.C defaults): the planted compound
  // predicate sits in a ~10^4-query pool, so a thin warm-up mostly misses.
  options.per_table.generator.warmup_iterations = config.fast ? 30 : 200;
  options.per_table.generator.warmup_top_k = config.fast ? 6 : 15;
  options.per_table.generator.generation_iterations = config.fast ? 8 : 25;
  options.per_table.qti.beam_width = 2;
  options.per_table.qti.max_depth = 2;
  options.per_table.qti.node_iterations = config.fast ? 8 : 30;
  options.per_table.evaluator.model = ModelKind::kLogisticRegression;
  options.per_table.evaluator.metric = MetricKind::kAuc;
  options.seed = config.seed;
  return options;
}

Result<double> RunVariant(const BenchConfig& config, const MultiTableBundle& bundle,
                          const MultiTableProblem& problem_template,
                          BudgetAllocation allocation,
                          const std::string& only_table, int total_features,
                          uint64_t seed_offset) {
  MultiTableProblem problem = problem_template;
  if (!only_table.empty()) {
    std::vector<RelevantInput> keep;
    for (const RelevantInput& input : problem.relevants) {
      if (input.name == only_table) keep.push_back(input);
    }
    problem.relevants = std::move(keep);
  }
  MultiTableOptions options = MakeOptions(config, total_features);
  options.allocation = allocation;
  options.seed = config.seed + seed_offset;
  const Table training = problem.training;
  MultiTableFeatAug feataug(std::move(problem), options);
  FEAT_ASSIGN_OR_RETURN(MultiTablePlan plan, feataug.Fit());
  FEAT_ASSIGN_OR_RETURN(Table augmented, feataug.Apply(plan, training));
  return TestMetric(augmented, bundle.label_col, config.seed);
}

int Run(const BenchConfig& config) {
  const int total_features = config.fast ? 8 : 16;
  const int repeats = std::max(config.fast ? 1 : 2, config.repeats);
  std::printf("Multi-table reductions (extension; §III)\n");
  std::printf("rows=%zu features=%d repeats=%d\n\n", config.rows, total_features,
              repeats);

  // ---- Section 1: allocation across the two fact tables. ----
  struct Variant {
    const char* label;
    BudgetAllocation allocation;
    const char* only_table;
  };
  const Variant variants[] = {
      {"order_items only", BudgetAllocation::kEqual, "order_items"},
      {"browse_log only", BudgetAllocation::kEqual, "browse_log"},
      {"both, equal split", BudgetAllocation::kEqual, ""},
      {"both, proxy-weighted", BudgetAllocation::kProxyWeighted, ""},
  };
  PrintHeader("Multi-table allocation (test AUC, equal total budget)");
  PrintRow("variant", {"AUC"});
  for (const Variant& variant : variants) {
    double sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      SyntheticOptions data_options;
      data_options.n_train = config.rows;
      data_options.avg_logs_per_entity = config.logs_per_entity;
      data_options.seed = config.seed + 13 * static_cast<uint64_t>(r);
      const MultiTableBundle bundle = MakeInstacartMultiTable(data_options);
      auto graph = bundle.BuildGraph();
      if (!graph.ok()) return 1;
      auto problem = MultiTableProblem::FromGraph(
          graph.value(), "training", "label", TaskKind::kBinaryClassification);
      if (!problem.ok()) return 1;
      auto metric = RunVariant(config, bundle, problem.value(),
                               variant.allocation, variant.only_table,
                               total_features, 101 * static_cast<uint64_t>(r));
      if (!metric.ok()) {
        std::fprintf(stderr, "%s: %s\n", variant.label,
                     metric.status().ToString().c_str());
        return 1;
      }
      sum += metric.value();
    }
    PrintRow(variant.label, {FormatMetric(sum / repeats)});
  }

  // ---- Section 2: deep-layer flatten vs raw fact table. ----
  PrintHeader("Deep-layer flatten (test AUC)");
  PrintRow("relevant table", {"AUC"});
  for (const bool flatten : {false, true}) {
    double sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      SyntheticOptions data_options;
      data_options.n_train = config.rows;
      data_options.avg_logs_per_entity = config.logs_per_entity;
      data_options.seed = config.seed + 13 * static_cast<uint64_t>(r);
      const MultiTableBundle bundle = MakeInstacartMultiTable(data_options);

      Table relevant = bundle.order_items;
      if (flatten) {
        auto graph = bundle.BuildGraph();
        if (!graph.ok()) return 1;
        auto flat = graph.value().FlattenRelevant("order_items");
        if (!flat.ok()) return 1;
        relevant = std::move(flat).ValueOrDie();
      }

      FeatAugProblem problem;
      problem.training = bundle.training;
      problem.label_col = bundle.label_col;
      problem.base_feature_cols = bundle.base_features;
      problem.relevant = relevant;
      problem.task = bundle.task;
      problem.agg_functions = AllAggFunctions();
      problem.fk_attrs = bundle.fk_attrs;
      TemplateIngredients inferred =
          InferTemplateIngredients(relevant, bundle.fk_attrs);
      problem.agg_attrs = inferred.agg_attrs;
      problem.candidate_where_attrs = inferred.where_candidates;

      MultiTableOptions shared = MakeOptions(config, total_features);
      FeatAugOptions options = shared.per_table;
      options.n_templates = std::max(1, total_features / 4);
      options.queries_per_template = 4;
      options.seed = config.seed + 101 * static_cast<uint64_t>(r);
      const Table training = problem.training;
      FeatAug feataug(std::move(problem), options);
      auto plan = feataug.Fit();
      if (!plan.ok()) return 1;
      auto augmented = feataug.Apply(plan.value(), training);
      if (!augmented.ok()) return 1;
      auto metric = TestMetric(augmented.value(), bundle.label_col, config.seed);
      if (!metric.ok()) return 1;
      sum += metric.value();
    }
    PrintRow(flatten ? "flattened chain" : "raw fact (no dims)",
             {FormatMetric(sum / repeats)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}

/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the substrate primitives on
/// FeatAug's hot path: predicate filtering, group-by aggregation, the full
/// feature materialization (filter + group + aggregate + join), mutual
/// information, and one TPE suggest/observe step.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/harness.h"
#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/augmenter.h"
#include "core/codec.h"
#include "core/feataug.h"
#include "core/generator.h"
#include "core/plan_io.h"
#include "data/synthetic.h"
#include "data/multi_table_data.h"
#include "hpo/tpe.h"
#include "query/query_planner.h"
#include "query/bitset.h"
#include "query/kernel_dispatch.h"
#include "query/sql_parser.h"
#include "query/executor.h"
#include "stats/stats.h"

// The executor speedup record lands at the repo root (set by CMake) so it is
// found in one place regardless of where the binary runs.
#ifndef FEATLIB_REPO_ROOT
#define FEATLIB_REPO_ROOT "."
#endif

namespace featlib {
namespace {

const DatasetBundle& SharedBundle() {
  static const DatasetBundle* bundle = [] {
    SyntheticOptions options;
    options.n_train = 2000;
    options.avg_logs_per_entity = 15;
    options.seed = 42;
    return new DatasetBundle(MakeTmall(options));
  }();
  return *bundle;
}

void BM_PredicateFilter(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const auto filter =
      CompiledFilter::Compile(SharedBundle().golden_query.predicates, b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.value().Apply());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_PredicateFilter);

void BM_GroupByAggregate(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  AggQuery q = b.golden_query;
  q.predicates.clear();
  q.agg = static_cast<AggFunction>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteAggQuery(q, b.relevant));
  }
  state.SetLabel(AggFunctionName(q.agg));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_GroupByAggregate)
    ->Arg(static_cast<int>(AggFunction::kSum))
    ->Arg(static_cast<int>(AggFunction::kAvg))
    ->Arg(static_cast<int>(AggFunction::kCountDistinct))
    ->Arg(static_cast<int>(AggFunction::kMedian))
    ->Arg(static_cast<int>(AggFunction::kEntropy));

void BM_FeatureMaterialization(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeFeatureColumn(b.golden_query, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_FeatureMaterialization);

// The candidate pool of a template search: every agg function crossed with
// predicate variants of the golden query, all sharing one set of group keys
// — the repeated-template workload the QueryPlanner amortizes.
std::vector<AggQuery> TemplateCandidates(const DatasetBundle& b) {
  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({});
  if (!b.golden_query.predicates.empty()) {
    pred_sets.push_back(b.golden_query.predicates);
    pred_sets.push_back({b.golden_query.predicates.front()});
  }
  std::vector<AggQuery> out;
  for (AggFunction fn : AllAggFunctions()) {
    for (const auto& preds : pred_sets) {
      AggQuery q = b.golden_query;
      q.agg = fn;
      q.predicates = preds;
      if (q.Validate(b.relevant).ok()) out.push_back(std::move(q));
    }
  }
  return out;
}

// Unamortized baseline: a fresh planner per candidate pays the full group
// index / mask / view build cost every time, like the retired legacy
// per-candidate executor did.
void BM_PerCandidateEvaluation(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  for (auto _ : state) {
    for (const AggQuery& q : candidates) {
      QueryPlanner fresh;
      benchmark::DoNotOptimize(
          fresh.ComputeFeatureColumn(q, b.training, b.relevant));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_PerCandidateEvaluation);

void BM_BatchedCandidateEvaluation(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  for (auto _ : state) {
    // Fresh executor per iteration: the group-index build is charged to the
    // batch, as in a real search over a new template.
    QueryPlanner executor;
    benchmark::DoNotOptimize(
        executor.EvaluateMany(candidates, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_BatchedCandidateEvaluation);

// The same batch fanned out over a pool of Arg(0) threads.
void BM_ParallelCandidateEvaluation(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    QueryPlanner executor;
    executor.set_thread_pool(&pool);
    benchmark::DoNotOptimize(
        executor.EvaluateMany(candidates, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_ParallelCandidateEvaluation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Slices the training table into `n_batches` contiguous row ranges — the
// serving workload: the same plan applied to successive incoming batches.
std::vector<Table> MakeServingBatches(const Table& training, size_t n_batches) {
  std::vector<Table> out;
  const size_t rows = training.num_rows();
  for (size_t b = 0; b < n_batches; ++b) {
    std::vector<uint32_t> indices;
    const size_t begin = b * rows / n_batches;
    const size_t end = (b + 1) * rows / n_batches;
    indices.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) {
      indices.push_back(static_cast<uint32_t>(r));
    }
    out.push_back(training.Take(indices));
  }
  return out;
}

std::unique_ptr<FittedAugmenter> MakeWarmHandle(
    const DatasetBundle& b, const std::vector<AggQuery>& candidates) {
  FittedAugmenter::Source source;
  source.relevant = b.relevant;
  source.queries = candidates;
  std::vector<FittedAugmenter::Source> sources;
  sources.push_back(std::move(source));
  auto fitted = FittedAugmenter::Create(std::move(sources));
  if (!fitted.ok()) {
    std::fprintf(stderr, "FittedAugmenter::Create failed: %s\n",
                 fitted.status().ToString().c_str());
    return nullptr;
  }
  std::unique_ptr<FittedAugmenter> handle = std::move(fitted).ValueOrDie();
  // Isolate plan-cache reuse: both arms of the comparison run serial.
  handle->set_thread_pool(nullptr);
  return handle;
}

// The cross-batch plan-cache comparison: a fresh planner per batch re-pays
// every group-index / mask / view / materialization build (the cost model
// of the pre-handle Apply path), while the warm FittedAugmenter only binds
// the batch's training-row maps and runs kernels. Arg(0): 0 = cold, 1 = warm.
void BM_TransformWarmVsCold(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  const std::vector<Table> batches = MakeServingBatches(b.training, 8);
  const bool warm = state.range(0) == 1;
  std::unique_ptr<FittedAugmenter> handle =
      warm ? MakeWarmHandle(b, candidates) : nullptr;
  if (warm && handle == nullptr) {
    state.SkipWithError("handle creation failed");
    return;
  }
  for (auto _ : state) {
    for (const Table& batch : batches) {
      if (warm) {
        benchmark::DoNotOptimize(handle->ComputeFeatureColumns(batch));
      } else {
        QueryPlanner fresh;
        benchmark::DoNotOptimize(
            fresh.EvaluateMany(candidates, batch, b.relevant));
      }
    }
  }
  state.SetLabel(warm ? "warm" : "cold");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batches.size() *
                                               candidates.size()));
}
BENCHMARK(BM_TransformWarmVsCold)->Arg(0)->Arg(1);

// ---- The search-pipeline comparison -----------------------------------------
//
// Both arms run the same seed-pinned TPE trajectory over the golden
// template: suggest_batch_size=1 reproduces the retired sequential loop
// proposal-for-proposal (pinned by generator_test), so the arms differ only
// in the *pipeline* — singleton ProxyScore / ModelScoreSingle calls with
// every repeat proposal recomputed (the pre-batching search side) vs the
// SearchSession pipeline (pooled Features evaluation + proxy/model score
// caches). TPE's exploitation phase re-proposes heavily, so the session
// caches absorb a large share of the warm-up's proxy computations. This is
// the conservative single-thread lower bound: larger batch sizes change the
// trajectory (they explore more distinct candidates per budget), and the
// pooled EvaluateMany fan-out adds multi-core scaling on top.

GeneratorOptions SearchArmOptions() {
  GeneratorOptions options;
  options.backend = HpoBackend::kTpe;
  options.warmup_iterations = 400;
  options.warmup_top_k = 3;
  options.generation_iterations = 3;
  options.n_queries = 5;
  options.seed = 17;
  options.suggest_batch_size = 1;  // trajectory-identical to the reference
  return options;
}

Result<FeatureEvaluator> MakeSearchEvaluator(const DatasetBundle& b) {
  EvaluatorOptions options;
  options.model = ModelKind::kLogisticRegression;
  options.metric = MetricKind::kAuc;
  return FeatureEvaluator::Create(b.training, b.label_col, b.base_features,
                                  b.relevant, b.task, options);
}

// The retired per-candidate search loop: one suggest/evaluate/observe
// round-trip at a time through the evaluator's singleton entry points.
Status RunSequentialSearchReference(FeatureEvaluator* evaluator,
                                    const QueryTemplate& tmpl,
                                    const GeneratorOptions& options) {
  FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                        QueryVectorCodec::Create(tmpl, evaluator->relevant()));
  std::vector<Trial> warm_trials;
  std::unordered_map<std::string, double> evaluated;
  auto model_eval = [&](const ParamVector& v, bool warm) -> Status {
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    const std::string key = q.CacheKey();
    auto it = evaluated.find(key);
    double loss;
    if (it != evaluated.end()) {
      loss = it->second;
    } else {
      FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScoreSingle(q));
      loss = evaluator->ScoreToLoss(metric);
      evaluated.emplace(key, loss);
    }
    if (warm) warm_trials.push_back(Trial{v, loss});
    return Status::OK();
  };

  TpeOptions proxy_tpe = options.tpe;
  proxy_tpe.seed = options.seed;
  Tpe proxy_search(codec.space(), proxy_tpe);
  std::vector<std::pair<ParamVector, double>> proxy_history;
  std::unordered_set<std::string> proxy_seen;
  for (int i = 0; i < options.warmup_iterations; ++i) {
    ParamVector v = proxy_search.Suggest();
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    FEAT_ASSIGN_OR_RETURN(double score,
                          evaluator->ProxyScore(q, options.proxy));
    proxy_search.Observe(v, -score);
    if (proxy_seen.insert(q.CacheKey()).second) {
      proxy_history.emplace_back(std::move(v), -score);
    }
  }
  std::sort(proxy_history.begin(), proxy_history.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  const size_t top_k = std::min<size_t>(
      proxy_history.size(), static_cast<size_t>(options.warmup_top_k));
  for (size_t i = 0; i < top_k; ++i) {
    FEAT_RETURN_NOT_OK(model_eval(proxy_history[i].first, /*warm=*/true));
  }

  TpeOptions gen_tpe = options.tpe;
  gen_tpe.seed = options.seed + 1;
  Tpe generation_search(codec.space(), gen_tpe);
  generation_search.WarmStart(warm_trials);
  for (int i = 0; i < options.generation_iterations; ++i) {
    ParamVector v = generation_search.Suggest();
    FEAT_RETURN_NOT_OK(model_eval(v, /*warm=*/false));
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    generation_search.Observe(v, evaluated.at(q.CacheKey()));
  }
  return Status::OK();
}

void BM_SearchBatchedVsSequential(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const bool batched = state.range(0) == 1;
  GeneratorOptions options = SearchArmOptions();
  options.warmup_iterations = 120;  // keep the registered benchmark light
  for (auto _ : state) {
    state.PauseTiming();
    auto evaluator = MakeSearchEvaluator(b);
    if (!evaluator.ok()) {
      state.SkipWithError("evaluator creation failed");
      return;
    }
    FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
    state.ResumeTiming();
    if (batched) {
      SqlQueryGenerator generator(&eval, options);
      benchmark::DoNotOptimize(generator.Run(b.golden_template));
    } else {
      Status st = RunSequentialSearchReference(&eval, b.golden_template, options);
      benchmark::DoNotOptimize(st);
    }
  }
  state.SetLabel(batched ? "batched" : "sequential");
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(options.warmup_iterations +
                           options.warmup_top_k +
                           options.generation_iterations));
}
BENCHMARK(BM_SearchBatchedVsSequential)->Arg(0)->Arg(1);

// Word-packed predicate-mask AND (the per-candidate conjunction step).
void BM_BitsetAnd(benchmark::State& state) {
  const size_t n = SharedBundle().relevant.num_rows();
  Bitset a(n), mask(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 2) mask.Set(i);
  for (auto _ : state) {
    a.AndWith(mask);
    benchmark::DoNotOptimize(const_cast<uint64_t*>(a.words()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetAnd);

void BM_MutualInformation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = x[i] > 0 ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformation(x, y, true));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MutualInformation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TpeSuggestObserve(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  TpeOptions options;
  options.seed = 3;
  Tpe tpe(codec.value().space(), options);
  Rng rng(4);
  // Pre-populate history so Suggest exercises the surrogate path.
  for (int i = 0; i < 64; ++i) {
    ParamVector v = codec.value().space().Sample(&rng);
    tpe.Observe(v, rng.Normal());
  }
  for (auto _ : state) {
    ParamVector v = tpe.Suggest();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TpeSuggestObserve);

void BM_QueryVectorDecode(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  Rng rng(5);
  ParamVector v = codec.value().space().Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.value().Decode(v));
  }
}
BENCHMARK(BM_QueryVectorDecode);

void BM_SqlParse(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::string sql = b.golden_query.ToSql("relevant", b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseAggQuerySql(sql));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_SqlParse);

void BM_FlattenRelevant(benchmark::State& state) {
  SyntheticOptions options;
  options.n_train = static_cast<size_t>(state.range(0));
  options.avg_logs_per_entity = 10;
  options.seed = 11;
  const MultiTableBundle bundle = MakeInstacartMultiTable(options);
  auto graph = bundle.BuildGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.value().FlattenRelevant("order_items"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bundle.order_items.num_rows()));
}
BENCHMARK(BM_FlattenRelevant)->Arg(1000)->Arg(5000);

// Shared inputs of the kernel-backend comparison (BM_KernelScalarVsSimd and
// the speedup record's kernel_* fields): the golden template's group index
// and compiled filter, a dense ~95% row mask, and the agg attribute's
// numeric view — the dense-mask shapes the vectorized backend targets
// (compare+movemask predicate evaluation, run-decoded streaming
// aggregation, aligned bucket materialization + slice MIN/MAX).
struct KernelBenchInputs {
  const GroupIndex* index = nullptr;         // golden keys: many small groups
  const GroupIndex* coarse_index = nullptr;  // coarse key: few long slices
  const CompiledFilter* filter = nullptr;
  Bitset dense_mask;
  std::vector<double> view;
  size_t n_rows = 0;
};

// Picks a low-cardinality group key for the long-slice materialized shape:
// the golden keys give entity-grained groups (slices of ~avg_logs rows),
// while template pools also group by coarse attributes whose slices span
// thousands of rows — where the aligned slice MIN/MAX vector loop engages.
std::vector<std::string> CoarseGroupKeys(const DatasetBundle& b) {
  for (const char* name : {"weekday", "order_dow", "hour"}) {
    if (b.relevant.HasColumn(name)) return {name};
  }
  return b.golden_query.group_keys;
}

const KernelBenchInputs& KernelBenchFixture() {
  static const KernelBenchInputs* inputs = [] {
    const DatasetBundle& b = SharedBundle();
    auto* in = new KernelBenchInputs();
    auto index = GroupIndex::Build(b.relevant, b.golden_query.group_keys);
    auto coarse = GroupIndex::Build(b.relevant, CoarseGroupKeys(b));
    auto filter =
        CompiledFilter::Compile(b.golden_query.predicates, b.relevant);
    auto view_col = b.relevant.GetColumn(b.golden_query.agg_attr);
    if (!index.ok() || !coarse.ok() || !filter.ok() || !view_col.ok()) {
      std::fprintf(stderr, "kernel bench fixture construction failed\n");
      std::abort();
    }
    in->index = new GroupIndex(std::move(index).ValueOrDie());
    in->coarse_index = new GroupIndex(std::move(coarse).ValueOrDie());
    in->filter = new CompiledFilter(std::move(filter).ValueOrDie());
    in->n_rows = b.relevant.num_rows();
    in->dense_mask = Bitset(in->n_rows);
    for (size_t i = 0; i < in->n_rows; ++i) {
      if (i % 19 != 7) in->dense_mask.Set(i);  // ~95% selected
    }
    in->view.resize(in->n_rows);
    for (size_t row = 0; row < in->n_rows; ++row) {
      in->view[row] = view_col.value()->AsDouble(row);
    }
    return in;
  }();
  return *inputs;
}

// Everything one composite pass produces — returned so the bit-identity
// check can compare backends output-for-output.
struct KernelCompositeOut {
  Bitset mask;
  std::vector<uint32_t> first_selected;
  std::vector<double> count, sum;
  MaterializedValues mat;
  std::vector<double> mn, mx;
};

// One pass of the dense-mask kernel workload through a backend table:
// fused predicate->mask evaluation, streaming COUNT (first-selected-row
// tracking) and SUM, bucket materialization, and slice MIN/MAX — every
// entry point the planner dispatches through except the training-row
// scatter (timed end-to-end by the EvaluateMany arms above).
KernelCompositeOut RunKernelComposite(const KernelOps& ops) {
  const KernelBenchInputs& in = KernelBenchFixture();
  KernelCompositeOut out;
  out.mask = Bitset(in.n_rows);
  ops.build_filter_mask(*in.filter, &out.mask);
  out.count = ops.aggregate_streaming(AggFunction::kCount, *in.index,
                                      &in.dense_mask, nullptr,
                                      &out.first_selected);
  out.sum = ops.aggregate_streaming(AggFunction::kSum, *in.index,
                                    &in.dense_mask, in.view.data(), nullptr);
  out.mat = ops.build_materialized(*in.coarse_index, &in.dense_mask,
                                   in.view.data());
  out.mn = ops.aggregate_from_materialized(AggFunction::kMin, out.mat);
  out.mx = ops.aggregate_from_materialized(AggFunction::kMax, out.mat);
  return out;
}

void BM_KernelScalarVsSimd(benchmark::State& state) {
  const KernelOps& ops =
      state.range(0) == 0 ? ScalarKernelOps() : SimdKernelOps();
  KernelBenchFixture();  // build outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKernelComposite(ops));
  }
  state.SetLabel(std::string(state.range(0) == 0 ? "scalar" : "simd/") +
                 (state.range(0) == 0 ? "" : SimdLevelName(ops.level)));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(KernelBenchFixture().n_rows));
}
BENCHMARK(BM_KernelScalarVsSimd)->Arg(0)->Arg(1);

}  // namespace

// True when every (row, candidate) cell matches bit for bit (NaN == NaN).
static bool ColumnsBitIdentical(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (std::isnan(a[r]) && std::isnan(b[r])) continue;
    if (std::memcmp(&a[r], &b[r], sizeof(double)) != 0) return false;
  }
  return true;
}

// True when two composite kernel passes agree output-for-output at the byte
// level — the backend bit-identity contract, checked on the exact workload
// the kernel_* timing fields compare.
static bool KernelOutputsBitIdentical(const KernelCompositeOut& a,
                                      const KernelCompositeOut& b) {
  if (a.mask.num_words() != b.mask.num_words() ||
      std::memcmp(a.mask.words(), b.mask.words(),
                  a.mask.num_words() * sizeof(uint64_t)) != 0) {
    return false;
  }
  if (a.first_selected != b.first_selected) return false;
  if (a.mat.present != b.mat.present || a.mat.offsets != b.mat.offsets)
    return false;
  if (a.mat.flat.size() != b.mat.flat.size() ||
      std::memcmp(a.mat.flat.data(), b.mat.flat.data(),
                  a.mat.flat.size() * sizeof(double)) != 0) {
    return false;
  }
  return ColumnsBitIdentical(a.count, b.count) &&
         ColumnsBitIdentical(a.sum, b.sum) && ColumnsBitIdentical(a.mn, b.mn) &&
         ColumnsBitIdentical(a.mx, b.mx);
}

// Times the repeated-template candidate-evaluation workload on the
// unamortized per-candidate baseline (fresh planner each call — the cost
// model of the retired legacy executor) vs the batched planner at every
// thread count of the sweep, verifies the feature columns are bit-identical
// at each count, and emits a machine-readable speedup record with per-phase
// (prepare vs fan-out) timings — prepare now runs on the pool too — and the
// word-packed vs byte-per-row mask-AND micro-timing.
int WriteExecutorSpeedupRecord(const char* path,
                               const std::vector<int>& thread_counts) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  constexpr int kRepeats = 3;

  // Per-candidate reference columns, reused for the per-thread-count
  // equivalence checks (all outside the timed sections; also warms the
  // allocator).
  std::vector<std::vector<double>> reference_columns;
  reference_columns.reserve(candidates.size());
  for (const AggQuery& q : candidates) {
    QueryPlanner fresh;
    auto reference = fresh.ComputeFeatureColumn(q, b.training, b.relevant);
    if (!reference.ok()) {
      std::fprintf(stderr, "per-candidate evaluation failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    reference_columns.push_back(std::move(reference).ValueOrDie());
  }
  bool bit_identical = true;
  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    QueryPlanner executor;
    executor.set_thread_pool(&pool);
    auto batched = executor.EvaluateMany(candidates, b.training, b.relevant);
    if (!batched.ok()) {
      std::fprintf(stderr, "batched evaluation (%d threads) failed: %s\n",
                   threads, batched.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!ColumnsBitIdentical(reference_columns[i], batched.value()[i])) {
        std::fprintf(stderr, "divergence at %d threads, candidate %zu (%s)\n",
                     threads, i, candidates[i].CacheKey().c_str());
        bit_identical = false;
        break;
      }
    }
  }

  WallTimer timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const AggQuery& q : candidates) {
      QueryPlanner fresh;
      benchmark::DoNotOptimize(
          fresh.ComputeFeatureColumn(q, b.training, b.relevant));
    }
  }
  const double per_candidate_seconds = timer.Seconds();

  // Thread sweep. A fresh executor per repeat charges the group-index and
  // mask builds to every batch, as in a real search over a new template.
  std::vector<double> sweep_seconds(thread_counts.size(), 0.0);
  std::vector<double> sweep_prepare(thread_counts.size(), 0.0);
  std::vector<double> sweep_aggregate(thread_counts.size(), 0.0);
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    ThreadPool pool(thread_counts[ti]);
    timer.Restart();
    for (int rep = 0; rep < kRepeats; ++rep) {
      QueryPlanner executor;
      executor.set_thread_pool(&pool);
      benchmark::DoNotOptimize(
          executor.EvaluateMany(candidates, b.training, b.relevant));
      // Summed over repeats so the phase fields decompose threads_N_seconds.
      sweep_prepare[ti] += executor.last_prepare_seconds();
      sweep_aggregate[ti] += executor.last_aggregate_seconds();
    }
    sweep_seconds[ti] = timer.Seconds();
  }

  // Word-packed vs byte-per-row mask AND over the relevant table's rows.
  const size_t n_rows = b.relevant.num_rows();
  constexpr int kAndReps = 4000;
  Bitset bits_a(n_rows), bits_b(n_rows);
  std::vector<uint8_t> bytes_a(n_rows, 0), bytes_b(n_rows, 0);
  for (size_t i = 0; i < n_rows; i += 3) {
    bits_a.Set(i);
    bytes_a[i] = 1;
  }
  for (size_t i = 0; i < n_rows; i += 2) {
    bits_b.Set(i);
    bytes_b[i] = 1;
  }
  timer.Restart();
  for (int rep = 0; rep < kAndReps; ++rep) {
    bits_a.AndWith(bits_b);
    benchmark::DoNotOptimize(const_cast<uint64_t*>(bits_a.words()));
  }
  const double bitset_and_seconds = timer.Seconds() / kAndReps;
  timer.Restart();
  for (int rep = 0; rep < kAndReps; ++rep) {
    for (size_t i = 0; i < n_rows; ++i) bytes_a[i] &= bytes_b[i];
    benchmark::DoNotOptimize(bytes_a.data());
  }
  const double bytemask_and_seconds = timer.Seconds() / kAndReps;

  // Scalar vs simd kernel backend on the dense-mask composite workload
  // (fused predicate->mask, run-decoded streaming aggregation, aligned
  // bucket materialization + slice MIN/MAX). Outputs are verified
  // byte-identical first — the backend contract — then best-of-k
  // interleaved repeats cancel drift, exactly as the ExecContext arms.
  double kernel_scalar_seconds = 0.0, kernel_simd_seconds = 0.0;
  bool kernel_simd_bit_identical = false;
  {
    const KernelOps& scalar_ops = ScalarKernelOps();
    const KernelOps& simd_ops = SimdKernelOps();
    kernel_simd_bit_identical = KernelOutputsBitIdentical(
        RunKernelComposite(scalar_ops), RunKernelComposite(simd_ops));
    constexpr int kKernelReps = 7;
    constexpr int kKernelCallsPerRep = 10;
    double scalar_best = 0.0, simd_best = 0.0;
    for (int rep = 0; rep < kKernelReps; ++rep) {
      timer.Restart();
      for (int c = 0; c < kKernelCallsPerRep; ++c) {
        benchmark::DoNotOptimize(RunKernelComposite(scalar_ops));
      }
      const double s = timer.Seconds();
      timer.Restart();
      for (int c = 0; c < kKernelCallsPerRep; ++c) {
        benchmark::DoNotOptimize(RunKernelComposite(simd_ops));
      }
      const double v = timer.Seconds();
      if (rep == 0 || s < scalar_best) scalar_best = s;
      if (rep == 0 || v < simd_best) simd_best = v;
    }
    kernel_scalar_seconds = scalar_best / kKernelCallsPerRep;
    kernel_simd_seconds = simd_best / kKernelCallsPerRep;
  }
  const double kernel_simd_speedup =
      kernel_simd_seconds > 0.0 ? kernel_scalar_seconds / kernel_simd_seconds
                                : 0.0;

  // Serving: the same plan applied to successive batches, cold (fresh
  // planner per batch, the pre-handle Apply cost model) vs warm (one
  // FittedAugmenter compiled once — the cross-batch plan cache). Outputs
  // are verified bit-identical before timing; both arms run serial.
  constexpr size_t kServingBatches = 8;
  constexpr int kServingRepeats = 3;
  const std::vector<Table> batches =
      MakeServingBatches(b.training, kServingBatches);
  std::unique_ptr<FittedAugmenter> handle = MakeWarmHandle(b, candidates);
  if (handle == nullptr) return 1;
  bool transform_bit_identical = true;
  for (const Table& batch : batches) {
    QueryPlanner fresh;
    auto cold = fresh.EvaluateMany(candidates, batch, b.relevant);
    auto warm = handle->ComputeFeatureColumns(batch);
    if (!cold.ok() || !warm.ok()) {
      std::fprintf(stderr, "serving comparison failed: %s\n",
                   (!cold.ok() ? cold : warm).status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!ColumnsBitIdentical(cold.value()[i], warm.value()[i])) {
        std::fprintf(stderr, "warm/cold divergence on candidate %zu (%s)\n", i,
                     candidates[i].CacheKey().c_str());
        transform_bit_identical = false;
        break;
      }
    }
  }
  timer.Restart();
  for (int rep = 0; rep < kServingRepeats; ++rep) {
    for (const Table& batch : batches) {
      QueryPlanner fresh;
      benchmark::DoNotOptimize(fresh.EvaluateMany(candidates, batch, b.relevant));
    }
  }
  const double transform_cold_seconds = timer.Seconds();
  timer.Restart();
  for (int rep = 0; rep < kServingRepeats; ++rep) {
    for (const Table& batch : batches) {
      benchmark::DoNotOptimize(handle->ComputeFeatureColumns(batch));
    }
  }
  const double transform_warm_seconds = timer.Seconds();

  // Search side: the retired sequential per-candidate loop vs the batched
  // suggest -> pooled-evaluate -> observe-all pipeline, on the same
  // seed-pinned trajectory (see BM_SearchBatchedVsSequential).
  constexpr int kSearchRepeats = 3;
  const GeneratorOptions search_options = SearchArmOptions();
  std::vector<FeatureEvaluator> sequential_evals, batched_evals;
  for (int rep = 0; rep < 2 * kSearchRepeats; ++rep) {
    auto evaluator = MakeSearchEvaluator(b);
    if (!evaluator.ok()) {
      std::fprintf(stderr, "search evaluator creation failed: %s\n",
                   evaluator.status().ToString().c_str());
      return 1;
    }
    (rep < kSearchRepeats ? sequential_evals : batched_evals)
        .push_back(std::move(evaluator).ValueOrDie());
  }
  timer.Restart();
  for (FeatureEvaluator& eval : sequential_evals) {
    Status st =
        RunSequentialSearchReference(&eval, b.golden_template, search_options);
    if (!st.ok()) {
      std::fprintf(stderr, "sequential search failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  const double search_sequential_seconds = timer.Seconds();
  size_t search_proxy_cache_hits = 0;
  timer.Restart();
  for (FeatureEvaluator& eval : batched_evals) {
    SqlQueryGenerator generator(&eval, search_options);
    auto gen = generator.Run(b.golden_template);
    if (!gen.ok()) {
      std::fprintf(stderr, "batched search failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    // A search that silently skipped candidates (partial-failure isolation)
    // would time a smaller workload than the sequential arm — refuse to
    // write a record comparing different search spaces.
    if (gen.value().failed_candidates > 0) {
      std::fprintf(stderr,
                   "batched search skipped %zu failed candidate(s); "
                   "refusing to write a biased record\n",
                   gen.value().failed_candidates);
      return 1;
    }
    search_proxy_cache_hits = gen.value().proxy_cache_hits;
  }
  const double search_batched_seconds = timer.Seconds();

  // The repeated-pool compile-memoization workload: successive HPO rounds
  // re-plan heavily overlapping pools through one warm planner; the overlap
  // resolves from the compile memo instead of re-validating and re-deriving
  // artifact keys.
  QueryPlanner repeated_pool_planner;
  constexpr size_t kMemoRounds = 6;
  const size_t window = (candidates.size() * 2) / 3;
  const size_t stride = std::max<size_t>(1, candidates.size() / 4);
  for (size_t round = 0; round < kMemoRounds; ++round) {
    std::vector<AggQuery> pool;
    pool.reserve(window);
    for (size_t k = 0; k < window; ++k) {
      pool.push_back(candidates[(round * stride + k) % candidates.size()]);
    }
    auto result =
        repeated_pool_planner.EvaluateMany(pool, b.training, b.relevant);
    if (!result.ok()) {
      std::fprintf(stderr, "repeated-pool round %zu failed: %s\n", round,
                   result.status().ToString().c_str());
      return 1;
    }
  }
  const size_t compile_hits = repeated_pool_planner.compile_cache_hits();
  const size_t compile_misses = repeated_pool_planner.compile_cache_misses();
  const double plan_compile_hit_rate =
      compile_hits + compile_misses > 0
          ? static_cast<double>(compile_hits) /
                static_cast<double>(compile_hits + compile_misses)
          : 0.0;

  // ExecContext overhead: the cooperative limit checks (cancellation /
  // deadline probes at chunk and stage boundaries, budget CAS charges) must
  // be invisible when no limit is set. Both arms run the same warm-planner
  // batch; best-of-k interleaved repeats cancel drift, and the CI gate
  // (scripts/ci.sh) asserts the ratio stays under 2%.
  constexpr int kCtxReps = 7;
  constexpr int kCtxCallsPerRep = 3;
  double ctx_off_seconds = 0.0, ctx_on_seconds = 0.0;
  {
    QueryPlanner warm_off, warm_on;
    ExecContext unlimited;  // no deadline, no budget: checks always pass
    // Warm both stores outside the timed region.
    benchmark::DoNotOptimize(
        warm_off.EvaluateMany(candidates, b.training, b.relevant));
    benchmark::DoNotOptimize(
        warm_on.EvaluateMany(candidates, b.training, b.relevant, &unlimited));
    double off_best = 0.0, on_best = 0.0;
    for (int rep = 0; rep < kCtxReps; ++rep) {
      timer.Restart();
      for (int c = 0; c < kCtxCallsPerRep; ++c) {
        benchmark::DoNotOptimize(
            warm_off.EvaluateMany(candidates, b.training, b.relevant));
      }
      const double off = timer.Seconds();
      timer.Restart();
      for (int c = 0; c < kCtxCallsPerRep; ++c) {
        benchmark::DoNotOptimize(warm_on.EvaluateMany(candidates, b.training,
                                                      b.relevant, &unlimited));
      }
      const double on = timer.Seconds();
      if (rep == 0 || off < off_best) off_best = off;
      if (rep == 0 || on < on_best) on_best = on;
    }
    ctx_off_seconds = off_best;
    ctx_on_seconds = on_best;
  }
  const double exec_context_overhead =
      ctx_off_seconds > 0.0 ? ctx_on_seconds / ctx_off_seconds : 1.0;

  // Durable-fit overhead: the same small fit with checkpointing off vs on
  // (atomic snapshot writes at round boundaries). With the async
  // CheckpointWriter the tax on the fit's critical path is CPU — snapshot
  // serialization on the fit thread — while the fsync'd writes ride a
  // background thread, so the gated ratio compares fit-thread CPU time
  // (CLOCK_THREAD_CPUTIME_ID): it captures exactly the work checkpointing
  // adds and is immune to the scheduler/neighbor jitter that drowns a 2%
  // effect in wall-clock on a shared machine. Wall-clock medians are kept
  // in the record for observability (they include the one bounded Flush
  // fsync at fit end); the arms alternate order within each rep so drift
  // cannot favor one side. The CI gate (scripts/ci.sh) asserts the CPU
  // ratio stays under 2% and that the durable fit's plan is
  // byte-identical.
  constexpr int kCkptReps = 9;
  double checkpoint_off_seconds = 0.0, checkpoint_on_seconds = 0.0;
  double checkpoint_snapshots = 0.0;
  double checkpoint_overhead = 1.0;
  bool checkpoint_plan_identical = true;
  {
    FeatAugOptions fit_options;
    fit_options.n_templates = 4;
    fit_options.queries_per_template = 3;
    fit_options.generator.warmup_iterations = 20;
    fit_options.generator.warmup_top_k = 5;
    fit_options.generator.generation_iterations = 16;
    fit_options.qti.beam_width = 2;
    fit_options.qti.max_depth = 2;
    fit_options.qti.node_iterations = 10;
    fit_options.evaluator.model = ModelKind::kLogisticRegression;
    fit_options.evaluator.metric = MetricKind::kAuc;
    fit_options.seed = 11;
    FeatAugOptions durable_options = fit_options;
    durable_options.checkpoint.dir = ".";
    durable_options.checkpoint.tag = "bench";
    // The production cadence: snapshot every few rounds, not every round —
    // each snapshot is an fsync'd file write, so the rate limit is what
    // amortizes durability to noise on a realistically sized fit.
    durable_options.checkpoint.every_rounds = 96;
    const std::string ckpt_path = "./fit_bench.ckpt";
    const FeatAugProblem problem = b.ToProblem();
    std::string off_plan_bytes, on_plan_bytes;
    std::vector<double> off_times, on_times;      // wall, for the record
    std::vector<double> off_cpu, on_cpu;          // fit-thread CPU, gated
    auto thread_cpu_seconds = []() {
      timespec ts;
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
    };
    auto run_off = [&]() -> bool {
      const double cpu0 = thread_cpu_seconds();
      timer.Restart();
      FeatAug fit(problem, fit_options);
      auto plan = fit.Fit();
      off_times.push_back(timer.Seconds());
      off_cpu.push_back(thread_cpu_seconds() - cpu0);
      if (!plan.ok()) {
        std::fprintf(stderr, "checkpoint-overhead fit failed: %s\n",
                     plan.status().ToString().c_str());
        return false;
      }
      off_plan_bytes =
          SerializeAugmentationPlan(plan.value(), "R", b.relevant);
      return true;
    };
    auto run_on = [&]() -> bool {
      std::remove(ckpt_path.c_str());  // each durable rep starts cold
      const double cpu0 = thread_cpu_seconds();
      timer.Restart();
      FeatAug fit(problem, durable_options);
      auto plan = fit.Fit();
      on_times.push_back(timer.Seconds());
      on_cpu.push_back(thread_cpu_seconds() - cpu0);
      if (!plan.ok()) {
        std::fprintf(stderr, "checkpoint-overhead durable fit failed: %s\n",
                     plan.status().ToString().c_str());
        return false;
      }
      on_plan_bytes =
          SerializeAugmentationPlan(plan.value(), "R", b.relevant);
      checkpoint_snapshots =
          static_cast<double>(plan.value().checkpoints_written);
      return true;
    };
    // Steady state: drain pending writeback first (a prior build's dirty
    // pages otherwise bill their flush to this bench's first fsyncs) and
    // absorb cold-start effects with one untimed pair.
    ::sync();
    if (!run_off() || !run_on()) return 1;
    checkpoint_plan_identical &= off_plan_bytes == on_plan_bytes;
    off_times.clear();
    on_times.clear();
    off_cpu.clear();
    on_cpu.clear();
    for (int rep = 0; rep < kCkptReps; ++rep) {
      const bool ok = (rep % 2 == 0) ? run_off() && run_on()
                                     : run_on() && run_off();
      if (!ok) return 1;
      checkpoint_plan_identical &= off_plan_bytes == on_plan_bytes;
    }
    std::remove(ckpt_path.c_str());
    if (std::getenv("FEATLIB_CKPT_DEBUG") != nullptr) {
      for (int rep = 0; rep < kCkptReps; ++rep) {
        std::fprintf(stderr,
                     "rep %d: wall off %.4f on %.4f | cpu off %.4f on %.4f "
                     "(%s first)\n",
                     rep, off_times[rep], on_times[rep], off_cpu[rep],
                     on_cpu[rep], rep % 2 == 0 ? "off" : "on");
      }
    }
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    checkpoint_off_seconds = median(off_times);
    checkpoint_on_seconds = median(on_times);
    // Gate on fit-thread CPU (median of per-rep ratios): deterministic work
    // is what checkpointing adds to the critical path, and CPU time does
    // not see the machine jitter that wall-clock does.
    std::vector<double> cpu_ratios;
    for (int rep = 0; rep < kCkptReps; ++rep) {
      if (off_cpu[rep] > 0.0) cpu_ratios.push_back(on_cpu[rep] / off_cpu[rep]);
    }
    checkpoint_overhead = cpu_ratios.empty() ? 1.0 : median(cpu_ratios);
  }

  // ---- Out-of-core morsel execution (query/morsel.h): a 10× table where
  // whole-table artifacts dominate memory. Measures the peak ExecContext
  // charge of the single-pass path vs the morsel pipeline (the bounded-
  // memory claim, gated < 0.5 by scripts/ci.sh), byte-identity of every
  // column, and the build/combine overlap win of the prefetch stage. ----
  size_t morsel_peak_bytes = 0;
  size_t morsel_single_pass_peak_bytes = 0;
  bool morsel_bit_identical = true;
  double morsel_prefetch_speedup = 0.0;
  double morsel_rows_used = 0.0;
  {
    SyntheticOptions big_options;
    big_options.n_train = 20000;  // 10× the shared bundle's training rows
    big_options.avg_logs_per_entity = 15;
    big_options.seed = 42;
    const DatasetBundle big = MakeTmall(big_options);
    // Streaming + two-sweep aggregates: the peak under test is the artifact
    // bound, not MEDIAN-style value buffering (which is O(selected rows) by
    // definition).
    std::vector<AggQuery> morsel_queries;
    for (AggFunction fn :
         {AggFunction::kCount, AggFunction::kSum, AggFunction::kAvg,
          AggFunction::kMin, AggFunction::kVar}) {
      AggQuery q = big.golden_query;
      q.agg = fn;
      q.predicates.clear();
      if (q.Validate(big.relevant).ok()) morsel_queries.push_back(std::move(q));
    }
    const size_t morsel_rows =
        std::max<size_t>(1, big.relevant.num_rows() / 24);
    morsel_rows_used = static_cast<double>(morsel_rows);

    ExecContext single_pass_ctx;
    QueryPlanner single_pass;
    auto single_out = single_pass.EvaluateMany(morsel_queries, big.training,
                                               big.relevant, &single_pass_ctx);
    if (!single_out.ok()) {
      std::fprintf(stderr, "morsel single-pass baseline failed: %s\n",
                   single_out.status().ToString().c_str());
      return 1;
    }
    morsel_single_pass_peak_bytes = single_pass_ctx.peak_charged_bytes();

    auto run_morsel = [&](bool prefetch, const ExecContext* ctx,
                          double* seconds)
        -> Result<std::vector<std::vector<double>>> {
      QueryPlanner planner;
      planner.set_morsel_rows(morsel_rows);
      planner.set_morsel_prefetch(prefetch);
      WallTimer morsel_timer;
      auto out =
          planner.EvaluateMany(morsel_queries, big.training, big.relevant, ctx);
      if (seconds != nullptr) *seconds = morsel_timer.Seconds();
      return out;
    };
    ExecContext morsel_ctx;
    double prefetch_seconds = 0.0;
    auto morsel_out = run_morsel(true, &morsel_ctx, &prefetch_seconds);
    if (!morsel_out.ok()) {
      std::fprintf(stderr, "morsel evaluation failed: %s\n",
                   morsel_out.status().ToString().c_str());
      return 1;
    }
    morsel_peak_bytes = morsel_ctx.peak_charged_bytes();
    for (size_t i = 0; i < morsel_queries.size(); ++i) {
      if (!ColumnsBitIdentical(single_out.value()[i], morsel_out.value()[i])) {
        std::fprintf(stderr, "morsel divergence at candidate %zu (%s)\n", i,
                     morsel_queries[i].CacheKey().c_str());
        morsel_bit_identical = false;
      }
    }
    double no_prefetch_seconds = 0.0;
    auto sequential_out = run_morsel(false, nullptr, &no_prefetch_seconds);
    if (!sequential_out.ok()) {
      std::fprintf(stderr, "morsel (prefetch off) evaluation failed: %s\n",
                   sequential_out.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < morsel_queries.size(); ++i) {
      if (!ColumnsBitIdentical(single_out.value()[i],
                               sequential_out.value()[i])) {
        morsel_bit_identical = false;
      }
    }
    // >1 when overlapping build(i+1) with combine(i) paid; ~1.0 on a
    // single-core host (recorded, not gated — the identity claims are the
    // contract, the overlap is opportunistic).
    morsel_prefetch_speedup = prefetch_seconds > 0.0
                                  ? no_prefetch_seconds / prefetch_seconds
                                  : 0.0;
  }

  const double batched_seconds = sweep_seconds.front();  // 1-thread batched
  const double best_seconds =
      *std::min_element(sweep_seconds.begin(), sweep_seconds.end());
  const double max_threads_seconds = sweep_seconds.back();
  const double prepare_1 = sweep_prepare.front();
  const double prepare_max = sweep_prepare.back();
  bench::JsonRecord record;
  record.Add("bench", std::string("executor_batch_vs_per_candidate"))
      .Add("dataset", b.name)
      .Add("relevant_rows", static_cast<double>(b.relevant.num_rows()))
      .Add("training_rows", static_cast<double>(b.training.num_rows()))
      .Add("candidates", static_cast<double>(candidates.size()))
      .Add("repeats", static_cast<double>(kRepeats))
      .Add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()))
      .Add("per_candidate_seconds", per_candidate_seconds)
      .Add("batched_seconds", batched_seconds)
      .Add("speedup", batched_seconds > 0.0
                          ? per_candidate_seconds / batched_seconds
                          : 0.0);
  std::string threads_list;
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    if (ti > 0) threads_list += ",";
    threads_list += std::to_string(thread_counts[ti]);
    const std::string prefix = "threads_" + std::to_string(thread_counts[ti]);
    record.Add(prefix + "_seconds", sweep_seconds[ti])
        .Add(prefix + "_prepare_seconds", sweep_prepare[ti])
        .Add(prefix + "_aggregate_seconds", sweep_aggregate[ti]);
  }
  record.Add("threads", threads_list)
      .Add("parallel_speedup_max_threads_vs_1",
           max_threads_seconds > 0.0 ? batched_seconds / max_threads_seconds
                                     : 0.0)
      // Artifact builds (group index, masks, views, materializations) now
      // fan out on the pool too; this isolates the prepare-phase scaling.
      .Add("prepare_parallel", true)
      .Add("prepare_parallel_speedup_max_threads_vs_1",
           prepare_max > 0.0 ? prepare_1 / prepare_max : 0.0)
      .Add("speedup_at_max_threads",
           max_threads_seconds > 0.0
               ? per_candidate_seconds / max_threads_seconds
               : 0.0)
      .Add("speedup_at_best",
           best_seconds > 0.0 ? per_candidate_seconds / best_seconds : 0.0)
      .Add("bitset_and_seconds", bitset_and_seconds)
      .Add("bytemask_and_seconds", bytemask_and_seconds)
      // Scalar vs simd kernel backend on the dense-mask composite workload;
      // dispatch_level records the ISA the simd table engaged on this host
      // ("scalar" on machines without one — speedup then sits near 1.0).
      .Add("kernel_scalar_seconds", kernel_scalar_seconds)
      .Add("kernel_simd_seconds", kernel_simd_seconds)
      .Add("kernel_simd_speedup", kernel_simd_speedup)
      .Add("kernel_dispatch_level", std::string(SimdLevelName(DetectedSimdLevel())))
      .Add("kernel_simd_bit_identical", kernel_simd_bit_identical)
      // The serving comparison: warm FittedAugmenter (plan compiled once,
      // per-batch work = train maps + kernels) vs a fresh planner per batch.
      .Add("transform_batches", static_cast<double>(kServingBatches))
      .Add("transform_repeats", static_cast<double>(kServingRepeats))
      .Add("transform_cold_seconds", transform_cold_seconds)
      .Add("transform_warm_seconds", transform_warm_seconds)
      .Add("transform_warm_vs_cold",
           transform_warm_seconds > 0.0
               ? transform_cold_seconds / transform_warm_seconds
               : 0.0)
      .Add("transform_bit_identical", transform_bit_identical)
      // The search-pipeline comparison: identical seed-pinned TPE
      // trajectories, sequential per-candidate loop vs the SearchSession
      // pipeline (pooled evaluation + score caches) at batch size 1.
      .Add("search_repeats", static_cast<double>(kSearchRepeats))
      .Add("search_sequential_seconds", search_sequential_seconds)
      .Add("search_batched_seconds", search_batched_seconds)
      .Add("search_batched_speedup",
           search_batched_seconds > 0.0
               ? search_sequential_seconds / search_batched_seconds
               : 0.0)
      .Add("search_proxy_cache_hits",
           static_cast<double>(search_proxy_cache_hits))
      // The repeated-pool benchmark: overlapping pools re-planned through
      // one warm planner resolve from the compile memo.
      .Add("plan_compile_hits", static_cast<double>(compile_hits))
      .Add("plan_compile_misses", static_cast<double>(compile_misses))
      .Add("plan_compile_hit_rate", plan_compile_hit_rate)
      // Cost of the cooperative execution-limit checks when no limit is set
      // (ratio of the with-context arm over the no-context arm; 1.0 = free).
      .Add("exec_context_off_seconds", ctx_off_seconds)
      .Add("exec_context_on_seconds", ctx_on_seconds)
      .Add("exec_context_overhead", exec_context_overhead)
      // Cost of durable fit: atomic checksummed snapshots at round
      // boundaries (ratio of checkpointed over plain fit; 1.0 = free).
      .Add("checkpoint_off_seconds", checkpoint_off_seconds)
      .Add("checkpoint_on_seconds", checkpoint_on_seconds)
      .Add("checkpoint_overhead", checkpoint_overhead)
      .Add("checkpoint_snapshots", checkpoint_snapshots)
      .Add("checkpoint_plan_identical", checkpoint_plan_identical)
      // Out-of-core morsel execution on the 10× table: peak artifact memory
      // of the bounded pipeline vs the whole-table single pass, byte-identity
      // of every column, and the prefetch overlap win.
      .Add("morsel_rows", morsel_rows_used)
      .Add("morsel_peak_bytes", static_cast<double>(morsel_peak_bytes))
      .Add("morsel_single_pass_peak_bytes",
           static_cast<double>(morsel_single_pass_peak_bytes))
      .Add("morsel_bit_identical", morsel_bit_identical)
      .Add("morsel_prefetch_speedup", morsel_prefetch_speedup)
      .Add("bit_identical", bit_identical);
  Status write_status = record.WriteTo(path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "%s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", record.ToString().c_str());
  return bit_identical && transform_bit_identical &&
                 checkpoint_plan_identical && kernel_simd_bit_identical &&
                 morsel_bit_identical
             ? 0
             : 1;
}

}  // namespace featlib

int main(int argc, char** argv) {
  // Listing runs must not execute (or overwrite the record of) the speedup
  // comparison; tooling wraps --benchmark_list_tests around every binary.
  bool list_only = false;
  // --threads=a,b,c sets the EvaluateMany sweep of the speedup record
  // (ascending; the last entry is reported as "max threads").
  std::vector<int> thread_counts = {1, 2, 4, 8};
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_list_tests") == 0 ||
        std::strcmp(argv[i], "--benchmark_list_tests=true") == 0) {
      list_only = true;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      const char* p = argv[i] + 10;
      while (*p != '\0') {
        char* end = nullptr;
        const long t = std::strtol(p, &end, 10);
        if (end == p || t <= 0) {
          std::fprintf(stderr, "bad --threads list: %s\n", argv[i]);
          return 1;
        }
        thread_counts.push_back(static_cast<int>(t));
        p = (*end == ',') ? end + 1 : end;
      }
      if (thread_counts.empty()) {
        std::fprintf(stderr, "bad --threads list: %s\n", argv[i]);
        return 1;
      }
      // The record's baseline and "max threads" fields assume a sorted,
      // deduplicated sweep that starts at the 1-thread batched path.
      thread_counts.push_back(1);
      std::sort(thread_counts.begin(), thread_counts.end());
      thread_counts.erase(
          std::unique(thread_counts.begin(), thread_counts.end()),
          thread_counts.end());
      continue;  // strip the flag: google-benchmark would reject it
    }
    argv[out_argc++] = argv[i];
  }
  argc = out_argc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (list_only) return 0;
  return featlib::WriteExecutorSpeedupRecord(
      FEATLIB_REPO_ROOT "/BENCH_executor.json", thread_counts);
}

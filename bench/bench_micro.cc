/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the substrate primitives on
/// FeatAug's hot path: predicate filtering, group-by aggregation, the full
/// feature materialization (filter + group + aggregate + join), mutual
/// information, and one TPE suggest/observe step.

#include <benchmark/benchmark.h>

#include "core/codec.h"
#include "data/synthetic.h"
#include "data/multi_table_data.h"
#include "hpo/tpe.h"
#include "query/sql_parser.h"
#include "query/executor.h"
#include "stats/stats.h"

namespace featlib {
namespace {

const DatasetBundle& SharedBundle() {
  static const DatasetBundle* bundle = [] {
    SyntheticOptions options;
    options.n_train = 2000;
    options.avg_logs_per_entity = 15;
    options.seed = 42;
    return new DatasetBundle(MakeTmall(options));
  }();
  return *bundle;
}

void BM_PredicateFilter(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const auto filter =
      CompiledFilter::Compile(SharedBundle().golden_query.predicates, b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.value().Apply());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_PredicateFilter);

void BM_GroupByAggregate(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  AggQuery q = b.golden_query;
  q.predicates.clear();
  q.agg = static_cast<AggFunction>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteAggQuery(q, b.relevant));
  }
  state.SetLabel(AggFunctionName(q.agg));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_GroupByAggregate)
    ->Arg(static_cast<int>(AggFunction::kSum))
    ->Arg(static_cast<int>(AggFunction::kAvg))
    ->Arg(static_cast<int>(AggFunction::kCountDistinct))
    ->Arg(static_cast<int>(AggFunction::kMedian))
    ->Arg(static_cast<int>(AggFunction::kEntropy));

void BM_FeatureMaterialization(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeFeatureColumn(b.golden_query, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_FeatureMaterialization);

void BM_MutualInformation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = x[i] > 0 ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformation(x, y, true));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MutualInformation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TpeSuggestObserve(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  TpeOptions options;
  options.seed = 3;
  Tpe tpe(codec.value().space(), options);
  Rng rng(4);
  // Pre-populate history so Suggest exercises the surrogate path.
  for (int i = 0; i < 64; ++i) {
    ParamVector v = codec.value().space().Sample(&rng);
    tpe.Observe(v, rng.Normal());
  }
  for (auto _ : state) {
    ParamVector v = tpe.Suggest();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TpeSuggestObserve);

void BM_QueryVectorDecode(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  Rng rng(5);
  ParamVector v = codec.value().space().Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.value().Decode(v));
  }
}
BENCHMARK(BM_QueryVectorDecode);

void BM_SqlParse(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::string sql = b.golden_query.ToSql("relevant", b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseAggQuerySql(sql));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_SqlParse);

void BM_FlattenRelevant(benchmark::State& state) {
  SyntheticOptions options;
  options.n_train = static_cast<size_t>(state.range(0));
  options.avg_logs_per_entity = 10;
  options.seed = 11;
  const MultiTableBundle bundle = MakeInstacartMultiTable(options);
  auto graph = bundle.BuildGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.value().FlattenRelevant("order_items"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bundle.order_items.num_rows()));
}
BENCHMARK(BM_FlattenRelevant)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace featlib

BENCHMARK_MAIN();

/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the substrate primitives on
/// FeatAug's hot path: predicate filtering, group-by aggregation, the full
/// feature materialization (filter + group + aggregate + join), mutual
/// information, and one TPE suggest/observe step.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/codec.h"
#include "data/synthetic.h"
#include "data/multi_table_data.h"
#include "hpo/tpe.h"
#include "query/batch_executor.h"
#include "query/sql_parser.h"
#include "query/executor.h"
#include "stats/stats.h"

namespace featlib {
namespace {

const DatasetBundle& SharedBundle() {
  static const DatasetBundle* bundle = [] {
    SyntheticOptions options;
    options.n_train = 2000;
    options.avg_logs_per_entity = 15;
    options.seed = 42;
    return new DatasetBundle(MakeTmall(options));
  }();
  return *bundle;
}

void BM_PredicateFilter(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const auto filter =
      CompiledFilter::Compile(SharedBundle().golden_query.predicates, b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.value().Apply());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_PredicateFilter);

void BM_GroupByAggregate(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  AggQuery q = b.golden_query;
  q.predicates.clear();
  q.agg = static_cast<AggFunction>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteAggQuery(q, b.relevant));
  }
  state.SetLabel(AggFunctionName(q.agg));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_GroupByAggregate)
    ->Arg(static_cast<int>(AggFunction::kSum))
    ->Arg(static_cast<int>(AggFunction::kAvg))
    ->Arg(static_cast<int>(AggFunction::kCountDistinct))
    ->Arg(static_cast<int>(AggFunction::kMedian))
    ->Arg(static_cast<int>(AggFunction::kEntropy));

void BM_FeatureMaterialization(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeFeatureColumn(b.golden_query, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b.relevant.num_rows()));
}
BENCHMARK(BM_FeatureMaterialization);

// The candidate pool of a template search: every agg function crossed with
// predicate variants of the golden query, all sharing one set of group keys
// — the repeated-template workload the BatchExecutor amortizes.
std::vector<AggQuery> TemplateCandidates(const DatasetBundle& b) {
  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({});
  if (!b.golden_query.predicates.empty()) {
    pred_sets.push_back(b.golden_query.predicates);
    pred_sets.push_back({b.golden_query.predicates.front()});
  }
  std::vector<AggQuery> out;
  for (AggFunction fn : AllAggFunctions()) {
    for (const auto& preds : pred_sets) {
      AggQuery q = b.golden_query;
      q.agg = fn;
      q.predicates = preds;
      if (q.Validate(b.relevant).ok()) out.push_back(std::move(q));
    }
  }
  return out;
}

void BM_LegacyCandidateEvaluation(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  for (auto _ : state) {
    for (const AggQuery& q : candidates) {
      benchmark::DoNotOptimize(ComputeFeatureColumnLegacy(q, b.training, b.relevant));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_LegacyCandidateEvaluation);

void BM_BatchedCandidateEvaluation(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  for (auto _ : state) {
    // Fresh executor per iteration: the group-index build is charged to the
    // batch, as in a real search over a new template.
    BatchExecutor executor;
    benchmark::DoNotOptimize(
        executor.EvaluateMany(candidates, b.training, b.relevant));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_BatchedCandidateEvaluation);

void BM_MutualInformation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = x[i] > 0 ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformation(x, y, true));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MutualInformation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TpeSuggestObserve(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  TpeOptions options;
  options.seed = 3;
  Tpe tpe(codec.value().space(), options);
  Rng rng(4);
  // Pre-populate history so Suggest exercises the surrogate path.
  for (int i = 0; i < 64; ++i) {
    ParamVector v = codec.value().space().Sample(&rng);
    tpe.Observe(v, rng.Normal());
  }
  for (auto _ : state) {
    ParamVector v = tpe.Suggest();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TpeSuggestObserve);

void BM_QueryVectorDecode(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
  Rng rng(5);
  ParamVector v = codec.value().space().Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.value().Decode(v));
  }
}
BENCHMARK(BM_QueryVectorDecode);

void BM_SqlParse(benchmark::State& state) {
  const DatasetBundle& b = SharedBundle();
  const std::string sql = b.golden_query.ToSql("relevant", b.relevant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseAggQuerySql(sql));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_SqlParse);

void BM_FlattenRelevant(benchmark::State& state) {
  SyntheticOptions options;
  options.n_train = static_cast<size_t>(state.range(0));
  options.avg_logs_per_entity = 10;
  options.seed = 11;
  const MultiTableBundle bundle = MakeInstacartMultiTable(options);
  auto graph = bundle.BuildGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.value().FlattenRelevant("order_items"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bundle.order_items.num_rows()));
}
BENCHMARK(BM_FlattenRelevant)->Arg(1000)->Arg(5000);

}  // namespace

// Times the repeated-template candidate-evaluation workload on the legacy
// per-candidate path vs the batched executor, verifies the feature columns
// are bit-identical, and emits a machine-readable speedup record.
int WriteExecutorSpeedupRecord(const char* path) {
  const DatasetBundle& b = SharedBundle();
  const std::vector<AggQuery> candidates = TemplateCandidates(b);
  constexpr int kRepeats = 3;

  // Warm-up + equivalence check (outside the timed sections).
  bool bit_identical = true;
  {
    BatchExecutor executor;
    auto batched = executor.EvaluateMany(candidates, b.training, b.relevant);
    if (!batched.ok()) {
      std::fprintf(stderr, "batched evaluation failed: %s\n",
                   batched.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < candidates.size() && bit_identical; ++i) {
      auto legacy =
          ComputeFeatureColumnLegacy(candidates[i], b.training, b.relevant);
      if (!legacy.ok() ||
          legacy.value().size() != batched.value()[i].size()) {
        bit_identical = false;
        break;
      }
      for (size_t r = 0; r < legacy.value().size(); ++r) {
        const double x = legacy.value()[r];
        const double y = batched.value()[i][r];
        if (std::isnan(x) && std::isnan(y)) continue;
        if (std::memcmp(&x, &y, sizeof(x)) != 0) {
          bit_identical = false;
          break;
        }
      }
    }
  }

  WallTimer timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const AggQuery& q : candidates) {
      benchmark::DoNotOptimize(
          ComputeFeatureColumnLegacy(q, b.training, b.relevant));
    }
  }
  const double legacy_seconds = timer.Seconds();

  timer.Restart();
  for (int rep = 0; rep < kRepeats; ++rep) {
    BatchExecutor executor;
    benchmark::DoNotOptimize(
        executor.EvaluateMany(candidates, b.training, b.relevant));
  }
  const double batched_seconds = timer.Seconds();

  const double speedup =
      batched_seconds > 0.0 ? legacy_seconds / batched_seconds : 0.0;
  bench::JsonRecord record;
  record.Add("bench", std::string("executor_batch_vs_legacy"))
      .Add("dataset", b.name)
      .Add("relevant_rows", static_cast<double>(b.relevant.num_rows()))
      .Add("training_rows", static_cast<double>(b.training.num_rows()))
      .Add("candidates", static_cast<double>(candidates.size()))
      .Add("repeats", static_cast<double>(kRepeats))
      .Add("legacy_seconds", legacy_seconds)
      .Add("batched_seconds", batched_seconds)
      .Add("speedup", speedup)
      .Add("bit_identical", bit_identical);
  Status write_status = record.WriteTo(path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "%s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", record.ToString().c_str());
  return bit_identical ? 0 : 1;
}

}  // namespace featlib

int main(int argc, char** argv) {
  // Listing runs must not execute (or overwrite the record of) the speedup
  // comparison; tooling wraps --benchmark_list_tests around every binary.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_list_tests", 22) == 0) {
      list_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (list_only) return 0;
  return featlib::WriteExecutorSpeedupRecord("BENCH_executor.json");
}

#include "bench/harness.h"

#include <cstdio>
#include <cstring>

#include "common/str_util.h"

namespace featlib {
namespace bench {

bool ParseBenchArgs(int argc, char** argv, BenchConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--rows=")) {
      config->rows = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--logs=")) {
      config->logs_per_entity = std::atof(v);
    } else if (const char* v = value_of("--repeats=")) {
      config->repeats = std::atoi(v);
    } else if (const char* v = value_of("--seed=")) {
      config->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--features=")) {
      config->n_features = std::atoi(v);
    } else if (arg == "--fast") {
      config->fast = true;
    } else if (const char* v = value_of("--datasets=")) {
      config->datasets = StrSplit(v, ',');
    } else if (const char* v = value_of("--models=")) {
      config->models.clear();
      for (const auto& name : StrSplit(v, ',')) {
        auto kind = ParseModelKind(name);
        if (!kind.ok()) {
          std::fprintf(stderr, "unknown model: %s\n", name.c_str());
          return false;
        }
        config->models.push_back(kind.value());
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N] [--logs=X] [--repeats=N] [--seed=N]\n"
                   "          [--features=N] [--fast] [--datasets=a,b]\n"
                   "          [--models=LR,XGB,RF,DeepFM]\n",
                   argv[0]);
      return false;
    }
  }
  if (config->fast) {
    config->rows = std::min<size_t>(config->rows, 700);
    config->logs_per_entity = std::min(config->logs_per_entity, 8.0);
    config->n_features = std::min(config->n_features, 9);
  }
  return true;
}

MethodBudget MakeBudget(const BenchConfig& config, ModelKind model) {
  MethodBudget budget;
  budget.queries_per_template = 5;
  budget.n_templates =
      std::max(1, (config.n_features + budget.queries_per_template - 1) /
                      budget.queries_per_template);
  budget.warmup_iterations = 200;  // paper's warm-up budget; proxy evals are cheap
  if (config.fast) {
    budget.warmup_iterations = 40;
    budget.warmup_top_k = 6;
    budget.generation_iterations = 10;
    budget.qti_node_iterations = 10;
    budget.qti_max_depth = 2;
    budget.selector.max_wrapper_steps = 3;
    budget.autofeature_budget = 10;
  }
  // The deep model dominates runtime inside the search loop; trim the
  // model-evaluated budget (the proxy warm-up stays full size).
  if (model == ModelKind::kDeepFm) {
    budget.warmup_top_k = std::max(3, budget.warmup_top_k / 2);
    budget.generation_iterations = std::max(5, budget.generation_iterations / 2);
    budget.selector.max_wrapper_steps =
        std::max<size_t>(2, budget.selector.max_wrapper_steps / 3);
    budget.autofeature_budget = std::max(5, budget.autofeature_budget / 3);
  }
  return budget;
}

EvaluatorOptions MakeEvaluatorOptions(const DatasetBundle& bundle,
                                      ModelKind model, uint64_t seed) {
  EvaluatorOptions options;
  options.model = model;
  options.metric = DefaultMetricFor(bundle.task);
  options.split_seed = seed;
  options.model_seed = seed + 1;
  return options;
}

Result<FeatureEvaluator> MakeEvaluator(const DatasetBundle& bundle,
                                       ModelKind model, uint64_t seed) {
  return FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                  bundle.base_features, bundle.relevant,
                                  bundle.task,
                                  MakeEvaluatorOptions(bundle, model, seed));
}

Result<CellResult> RunAugmenterCell(Augmenter* augmenter) {
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        augmenter->Fit());
  CellResult cell;
  FeatureEvaluator* evaluator = augmenter->evaluator();
  if (evaluator == nullptr) {
    return Status::Internal("augmenter exposes no evaluator for test scoring");
  }
  FEAT_ASSIGN_OR_RETURN(cell.metric, evaluator->TestScore(fitted->AllQueries()));
  const FitDiagnostics& diag = fitted->diagnostics();
  cell.qti_seconds = diag.qti_seconds;
  cell.warmup_seconds = diag.warmup_seconds;
  cell.generate_seconds = diag.generate_seconds;
  cell.n_features = fitted->num_features();
  cell.failed_candidates = diag.failed_candidates.size();
  if (cell.failed_candidates > 0) {
    // Loud, not fatal: the fit is still valid (isolation skipped the failed
    // candidates), but the cell explored a smaller space than its peers.
    std::fprintf(stderr,
                 "WARNING: %s fit skipped %zu failed candidate(s); first: %s\n",
                 augmenter->name(), cell.failed_candidates,
                 diag.failed_candidates.front().status.ToString().c_str());
  }
  return cell;
}

Result<CellResult> RunFeatAug(const DatasetBundle& bundle, ModelKind model,
                              FeatAugVariant variant, ProxyKind proxy,
                              const MethodBudget& budget, uint64_t seed) {
  FeatAugOptions options;
  options.n_templates = budget.n_templates;
  options.queries_per_template = budget.queries_per_template;
  options.enable_qti = variant != FeatAugVariant::kNoQti;
  options.enable_warmup = variant != FeatAugVariant::kNoWarmup;
  options.proxy = proxy;
  options.generator.warmup_iterations = budget.warmup_iterations;
  options.generator.warmup_top_k = budget.warmup_top_k;
  options.generator.generation_iterations = budget.generation_iterations;
  options.qti.node_iterations = budget.qti_node_iterations;
  options.qti.beam_width = budget.qti_beam_width;
  options.qti.max_depth = budget.qti_max_depth;
  options.evaluator.model = model;
  options.evaluator.metric = DefaultMetricFor(bundle.task);
  options.evaluator.split_seed = seed;
  options.evaluator.model_seed = seed + 1;
  options.seed = seed;

  std::unique_ptr<Augmenter> augmenter =
      MakeFeatAugAugmenter(bundle.ToProblem(), options);
  return RunAugmenterCell(augmenter.get());
}

Result<CellResult> RunFeaturetools(const DatasetBundle& bundle, ModelKind model,
                                   SelectorKind selector, const MethodBudget& budget,
                                   int n_features, uint64_t seed) {
  std::unique_ptr<Augmenter> augmenter = MakeFeaturetoolsAugmenter(
      bundle.ToProblem(), static_cast<size_t>(n_features), selector,
      budget.selector, MakeEvaluatorOptions(bundle, model, seed));
  return RunAugmenterCell(augmenter.get());
}

Result<CellResult> RunRandom(const DatasetBundle& bundle, ModelKind model,
                             const MethodBudget& budget, int n_features,
                             uint64_t seed) {
  RandomAugOptions options;
  options.n_templates = budget.n_templates;
  options.queries_per_template =
      (n_features + budget.n_templates - 1) / budget.n_templates;
  options.seed = seed;
  std::unique_ptr<Augmenter> augmenter = MakeRandomAugmenter(
      bundle.ToProblem(), options, static_cast<size_t>(n_features),
      MakeEvaluatorOptions(bundle, model, seed));
  return RunAugmenterCell(augmenter.get());
}

namespace {

// One identity query per aggregable attribute: the feature space ARDA and
// AutoFeature search over for one-to-one relationship tables.
std::vector<AggQuery> IdentityCandidates(const DatasetBundle& bundle) {
  std::vector<AggQuery> out;
  for (const auto& attr : bundle.agg_attrs) {
    AggQuery q;
    q.agg = AggFunction::kAvg;
    q.agg_attr = attr;
    q.group_keys = bundle.fk_attrs;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

Result<CellResult> RunArda(const DatasetBundle& bundle, ModelKind model,
                           int n_features, uint64_t seed) {
  ArdaOptions options;
  options.seed = seed;
  std::unique_ptr<Augmenter> augmenter = MakeArdaAugmenter(
      bundle.ToProblem(), static_cast<size_t>(n_features), options,
      IdentityCandidates(bundle), MakeEvaluatorOptions(bundle, model, seed));
  return RunAugmenterCell(augmenter.get());
}

Result<CellResult> RunAutoFeature(const DatasetBundle& bundle, ModelKind model,
                                  AutoFeaturePolicy policy, int n_features,
                                  const MethodBudget& budget, uint64_t seed) {
  AutoFeatureOptions options;
  options.policy = policy;
  options.budget = budget.autofeature_budget;
  options.seed = seed;
  std::unique_ptr<Augmenter> augmenter = MakeAutoFeatureAugmenter(
      bundle.ToProblem(), static_cast<size_t>(n_features), options,
      IdentityCandidates(bundle), MakeEvaluatorOptions(bundle, model, seed));
  return RunAugmenterCell(augmenter.get());
}

double MeanMetric(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::string& label, const std::vector<std::string>& cells) {
  std::printf("%-16s", label.c_str());
  for (const auto& cell : cells) std::printf(" %12s", cell.c_str());
  std::printf("\n");
}

std::string FormatMetric(double value) { return StrFormat("%.4f", value); }

Result<ModelKind> ParseModelKind(const std::string& name) {
  const std::string upper = [&] {
    std::string s = name;
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
  }();
  if (upper == "LR") return ModelKind::kLogisticRegression;
  if (upper == "XGB") return ModelKind::kXgb;
  if (upper == "RF") return ModelKind::kRandomForest;
  if (upper == "DEEPFM") return ModelKind::kDeepFm;
  return Status::InvalidArgument("unknown model: " + name);
}

const char* MetricNameFor(const DatasetBundle& bundle) {
  return MetricKindToString(DefaultMetricFor(bundle.task));
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

JsonRecord& JsonRecord::Add(const std::string& key, double value) {
  fields_.emplace_back(key, StrFormat("%.9g", value));
  return *this;
}

JsonRecord& JsonRecord::Add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonRecord& JsonRecord::Add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string JsonRecord::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

Status JsonRecord::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string body = ToString() + "\n";
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<DatasetBundle> MakeBundle(const std::string& name, const BenchConfig& config,
                                 uint64_t seed_offset) {
  SyntheticOptions options;
  options.n_train = config.rows;
  options.avg_logs_per_entity = config.logs_per_entity;
  options.seed = config.seed + seed_offset;
  return MakeDatasetByName(name, options);
}

}  // namespace bench
}  // namespace featlib

/// \file bench_hpo_ablation.cc
/// \brief Extension ablation (the paper's §V Remark: "It will be
/// interesting to investigate which HPO method is better"): best proxy
/// value found over iterations by TPE, SMAC and Random search on the golden
/// template's query pool, averaged over seeds.
///
/// Expected shape: both model-based engines dominate Random; TPE and SMAC
/// trade wins depending on the landscape (categorical-heavy pools favor
/// TPE's per-dimension estimators).

#include <cstdio>

#include "bench/harness.h"
#include "common/str_util.h"
#include "core/codec.h"
#include "common/timer.h"
#include "core/generator.h"

namespace featlib {
namespace bench {
namespace {

int Run(const BenchConfig& config) {
  const std::vector<std::string> datasets =
      config.datasets.empty() ? std::vector<std::string>{"tmall", "student"}
                              : config.datasets;
  const int iterations = config.fast ? 40 : 120;
  const int seeds = config.fast ? 2 : 4;
  const std::vector<int> checkpoints =
      config.fast ? std::vector<int>{20, 40} : std::vector<int>{30, 60, 120};

  std::printf("HPO-backend ablation (extension; §V Remark)\n");
  std::printf("rows=%zu iterations=%d seeds=%d\n", config.rows, iterations, seeds);

  for (const auto& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) {
      std::fprintf(stderr, "bundle %s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    const DatasetBundle& b = bundle.value();
    auto evaluator =
        MakeEvaluator(b, ModelKind::kLogisticRegression, config.seed);
    if (!evaluator.ok()) return 1;
    FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
    auto codec = QueryVectorCodec::Create(b.golden_template, b.relevant);
    if (!codec.ok()) return 1;

    PrintHeader("HPO ablation — " + name + " (best MI proxy so far)");
    std::vector<std::string> header;
    for (int cp : checkpoints) header.push_back(StrFormat("iter %d", cp));
    PrintRow("engine", header);

    for (HpoBackend backend :
         {HpoBackend::kTpe, HpoBackend::kSmac, HpoBackend::kRandom}) {
      std::vector<double> best_at(checkpoints.size(), 0.0);
      for (int s = 0; s < seeds; ++s) {
        GeneratorOptions gen_options;  // only for the optimizer factory path
        gen_options.backend = backend;
        // Drive the optimizer directly against the MI proxy.
        std::unique_ptr<Optimizer> optimizer;
        TpeOptions tpe_options;
        tpe_options.seed = config.seed + 31 * s;
        switch (backend) {
          case HpoBackend::kTpe:
            optimizer = std::make_unique<Tpe>(codec.value().space(), tpe_options);
            break;
          case HpoBackend::kSmac: {
            SmacOptions smac_options;
            smac_options.seed = config.seed + 31 * s;
            optimizer =
                std::make_unique<Smac>(codec.value().space(), smac_options);
            break;
          }
          case HpoBackend::kRandom:
            optimizer = std::make_unique<RandomSearch>(codec.value().space(),
                                                       config.seed + 31 * s);
            break;
          case HpoBackend::kHyperband:
          case HpoBackend::kBohb:
            // Multi-fidelity backends are driven end-to-end in section 2;
            // a proxy-only sequential loop has no fidelity axis for them.
            continue;
        }
        double best = 0.0;
        size_t checkpoint = 0;
        for (int i = 0; i < iterations; ++i) {
          const ParamVector v = optimizer->Suggest();
          auto query = codec.value().Decode(v);
          if (!query.ok()) continue;
          auto score =
              eval.ProxyScore(query.value(), ProxyKind::kMutualInformation);
          if (!score.ok()) continue;
          best = std::max(best, score.value());
          optimizer->Observe(v, -score.value());
          if (checkpoint < checkpoints.size() && i + 1 == checkpoints[checkpoint]) {
            best_at[checkpoint] += best;
            ++checkpoint;
          }
        }
      }
      std::vector<std::string> cells;
      for (double total : best_at) {
        cells.push_back(FormatMetric(total / static_cast<double>(seeds)));
      }
      PrintRow(HpoBackendToString(backend), cells);
    }
  }

  // ---- Section 2: end-to-end generation round, all five backends at an
  // equal model-training budget (full-evaluation equivalents). Expected
  // shape: the model-based engines (TPE, SMAC, BOHB) beat Random; the
  // multi-fidelity engines spend more raw evaluations (most at reduced
  // fidelity) for a similar or better best metric.
  for (const auto& name : datasets) {
    auto bundle = MakeBundle(name, config);
    if (!bundle.ok()) return 1;
    const DatasetBundle& b = bundle.value();

    PrintHeader("HPO backends end-to-end — " + name +
                " (validation metric, equal budget)");
    PrintRow("engine", {"best metric", "model evals", "seconds"});
    for (HpoBackend backend :
         {HpoBackend::kTpe, HpoBackend::kSmac, HpoBackend::kRandom,
          HpoBackend::kHyperband, HpoBackend::kBohb}) {
      double metric_sum = 0.0;
      size_t eval_sum = 0;
      double seconds_sum = 0.0;
      for (int s = 0; s < seeds; ++s) {
        auto evaluator =
            MakeEvaluator(b, ModelKind::kLogisticRegression, config.seed);
        if (!evaluator.ok()) return 1;
        FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
        GeneratorOptions gen_options;
        gen_options.backend = backend;
        gen_options.warmup_iterations = config.fast ? 30 : 80;
        gen_options.warmup_top_k = config.fast ? 6 : 10;
        gen_options.generation_iterations = config.fast ? 10 : 25;
        gen_options.n_queries = 5;
        gen_options.seed = config.seed + 17 * static_cast<uint64_t>(s);
        SqlQueryGenerator generator(&eval, gen_options);
        WallTimer timer;
        auto gen = generator.Run(b.golden_template);
        if (!gen.ok()) {
          std::fprintf(stderr, "%s on %s: %s\n", HpoBackendToString(backend),
                       name.c_str(), gen.status().ToString().c_str());
          return 1;
        }
        seconds_sum += timer.Seconds();
        metric_sum += gen.value().queries.empty()
                          ? 0.0
                          : gen.value().queries.front().model_metric;
        eval_sum += gen.value().model_evals;
      }
      PrintRow(HpoBackendToString(backend),
               {FormatMetric(metric_sum / seeds),
                StrFormat("%zu", eval_sum / static_cast<size_t>(seeds)),
                StrFormat("%.2fs", seconds_sum / seeds)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace featlib

int main(int argc, char** argv) {
  featlib::bench::BenchConfig config;
  if (!featlib::bench::ParseBenchArgs(argc, argv, &config)) return 2;
  return featlib::bench::Run(config);
}
